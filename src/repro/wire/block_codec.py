"""Canonical byte encoding of full blocks (the durable-storage codec).

Blocks never cross the SP↔user link whole — users get headers, objects
and VOs — but the SP's own :mod:`repro.storage` backends need to lay a
block down on disk and get the *same* block back after a restart.  The
codec therefore covers the full-node view: header, object payload,
skip-list entries and the intra-block index tree with its accumulator
digests.

Two properties drive the layout:

* **Byte-identical round trip** — ``encode(decode(encode(b))) ==
  encode(b)``; multisets are written in sorted key order and object
  keywords are already canonically sorted by :func:`write_object`, so
  the encoding is a pure function of the block's logical content.
* **Recompute what hashing can check.**  Node hashes, per-node
  attribute multisets and the block's ``attrs_sum`` are *derived* on
  decode (from the stored objects, digests and tree shape) rather than
  stored.  That keeps segments compact and means a decoded tree is
  hash-consistent by construction: a flipped payload byte surfaces as a
  ``merkle_root`` mismatch when the chain layer re-validates the
  header, not as silently wrong proofs at query time.

Accumulator digests are the one thing that cannot be recomputed cheaply
(they cost group exponentiations per multiset element), so they are
stored verbatim via ``backend.encode`` — the same validated element
encoding the VO codec uses.
"""

from __future__ import annotations

from collections import Counter

from repro.accumulators.base import AccumulatorValue
from repro.chain.block import Block, SkipEntry, skiplist_root_hash
from repro.chain.object import DataObject
from repro.crypto.backend import PairingBackend
from repro.crypto.hashing import DIGEST_NBYTES
from repro.index.intra import IndexNode, children_hash, encode_digest, internal_hash
from repro.wire.codec import Reader, WireError, Writer
from repro.wire.vo_codec import (
    read_header,
    read_object,
    read_value,
    write_header,
    write_object,
    write_value,
)

#: node tags in the serialized intra-index tree
_NODE_LEAF = 1
_NODE_INTERNAL = 2  # digest-bearing (intra/both modes)
_NODE_NIL = 3  # hash-only internal (the ``nil`` flat tree)

_ABSENT = 0
_PRESENT = 1

#: sanity bounds — a decoded block should never need more than these
MAX_OBJECTS = 1 << 20
MAX_SKIP_ENTRIES = 256
MAX_MULTISET_ENTRIES = 1 << 22
MAX_TREE_DEPTH = 80


# -- multisets -----------------------------------------------------------------
def _write_multiset(writer: Writer, attrs: Counter[str]) -> None:
    items = sorted(attrs.items())
    writer.uvarint(len(items))
    for key, count in items:
        if count <= 0:
            raise WireError("multiset counts must be positive")
        writer.text(key)
        writer.uvarint(count)


def _read_multiset(reader: Reader) -> Counter[str]:
    count = reader.uvarint()
    if count > MAX_MULTISET_ENTRIES:
        raise WireError("multiset has implausibly many entries")
    attrs: Counter[str] = Counter()
    for _ in range(count):
        key = reader.text()
        multiplicity = reader.uvarint()
        if multiplicity == 0:
            raise WireError("multiset counts must be positive")
        attrs[key] = multiplicity
    return attrs


def _write_optional_value(
    writer: Writer, backend: PairingBackend, value: AccumulatorValue | None
) -> None:
    if value is None:
        writer.byte(_ABSENT)
    else:
        writer.byte(_PRESENT)
        write_value(writer, backend, value)


def _read_optional_value(
    reader: Reader, backend: PairingBackend
) -> AccumulatorValue | None:
    flag = reader.byte()
    if flag == _ABSENT:
        return None
    if flag == _PRESENT:
        return read_value(reader, backend)
    raise WireError(f"bad optional-value flag {flag}")


# -- skip entries --------------------------------------------------------------
def _write_skip_entry(
    writer: Writer, backend: PairingBackend, entry: SkipEntry
) -> None:
    writer.uvarint(entry.distance)
    writer.uvarint(len(entry.covered_heights))
    for height in entry.covered_heights:
        writer.uvarint(height)
    _write_multiset(writer, entry.attrs)
    write_value(writer, backend, entry.att_digest)
    writer.raw(entry.pre_skipped_hash)


def _read_skip_entry(reader: Reader, backend: PairingBackend) -> SkipEntry:
    distance = reader.uvarint()
    n_covered = reader.uvarint()
    if n_covered > MAX_OBJECTS:
        raise WireError("skip entry covers implausibly many heights")
    covered = tuple(reader.uvarint() for _ in range(n_covered))
    attrs = _read_multiset(reader)
    att_digest = read_value(reader, backend)
    pre_skipped_hash = reader.raw(DIGEST_NBYTES)
    return SkipEntry(
        distance=distance,
        covered_heights=covered,
        attrs=attrs,
        att_digest=att_digest,
        pre_skipped_hash=pre_skipped_hash,
    )


# -- the intra-index tree ------------------------------------------------------
# vlint: disable=codec-completeness -- node_hash/attrs are recomputed on
# decode from the stored objects and digests (see the module docstring)
def _write_node(
    writer: Writer,
    backend: PairingBackend,
    node: IndexNode,
    leaf_index: dict[int, int],
) -> None:
    if node.is_leaf:
        writer.byte(_NODE_LEAF)
        writer.uvarint(leaf_index[id(node.obj)])
        if node.att_digest is None:
            raise WireError("leaf node is missing its attribute digest")
        write_value(writer, backend, node.att_digest)
        return
    if len(node.children) != 2:
        raise WireError("internal index nodes must have exactly two children")
    if node.att_digest is not None:
        writer.byte(_NODE_INTERNAL)
        write_value(writer, backend, node.att_digest)
    else:
        writer.byte(_NODE_NIL)
    for child in node.children:
        _write_node(writer, backend, child, leaf_index)


def _read_node(
    reader: Reader,
    backend: PairingBackend,
    objects: list[DataObject],
    bits: int,
    used: set[int],
    depth: int = 0,
) -> IndexNode:
    if depth > MAX_TREE_DEPTH:
        raise WireError("index tree nesting too deep")
    tag = reader.byte()
    if tag == _NODE_LEAF:
        index = reader.uvarint()
        if index >= len(objects):
            raise WireError(f"leaf references object {index} of {len(objects)}")
        if index in used:
            raise WireError(f"object {index} appears at two leaves")
        used.add(index)
        obj = objects[index]
        att_digest = read_value(reader, backend)
        attrs = obj.attribute_multiset(bits)
        digest_bytes = encode_digest(backend, att_digest)
        return IndexNode(
            node_hash=internal_hash(obj.serialize(), digest_bytes),
            attrs=attrs,
            att_digest=att_digest,
            obj=obj,
        )
    if tag == _NODE_INTERNAL:
        att_digest = read_value(reader, backend)
        left = _read_node(reader, backend, objects, bits, used, depth + 1)
        right = _read_node(reader, backend, objects, bits, used, depth + 1)
        children = (left, right)
        if left.attrs is None or right.attrs is None:
            raise WireError("digest-bearing node over hash-only children")
        digest_bytes = encode_digest(backend, att_digest)
        return IndexNode(
            node_hash=internal_hash(children_hash(children), digest_bytes),
            attrs=left.attrs | right.attrs,
            att_digest=att_digest,
            children=children,
        )
    if tag == _NODE_NIL:
        left = _read_node(reader, backend, objects, bits, used, depth + 1)
        right = _read_node(reader, backend, objects, bits, used, depth + 1)
        children = (left, right)
        return IndexNode(
            node_hash=children_hash(children),
            attrs=None,
            att_digest=None,
            children=children,
        )
    raise WireError(f"unknown index node tag {tag}")


# -- full blocks ---------------------------------------------------------------
# vlint: disable=codec-completeness -- attrs_sum is rebuilt on decode by
# summing the recovered leaf multisets; storing it would be redundant
def encode_block(backend: PairingBackend, block: Block) -> bytes:
    """Canonical bytes of a full block (header, payload, ADS)."""
    writer = Writer()
    write_header(writer, block.header)
    if len(block.objects) > MAX_OBJECTS:
        raise WireError("block has implausibly many objects")
    writer.uvarint(len(block.objects))
    for obj in block.objects:
        write_object(writer, obj)
    _write_optional_value(writer, backend, block.sum_digest)
    if len(block.skip_entries) > MAX_SKIP_ENTRIES:
        raise WireError("block has implausibly many skip entries")
    writer.uvarint(len(block.skip_entries))
    for entry in block.skip_entries:
        _write_skip_entry(writer, backend, entry)
    leaf_index = {id(obj): pos for pos, obj in enumerate(block.objects)}
    _write_node(writer, backend, block.index_root, leaf_index)
    return writer.getvalue()


def decode_block(backend: PairingBackend, data: bytes, bits: int) -> Block:
    """Rebuild a block; ``bits`` is the deployment's prefix width.

    Attribute multisets and node hashes are recomputed from the decoded
    objects and tree shape, so the result is internally consistent —
    whether it matches the *chain* is the caller's check
    (header linkage, consensus nonce, ``merkle_root`` binding).
    """
    reader = Reader(data)
    header = read_header(reader)
    n_objects = reader.uvarint()
    if n_objects > MAX_OBJECTS:
        raise WireError("block has implausibly many objects")
    objects = [read_object(reader) for _ in range(n_objects)]
    sum_digest = _read_optional_value(reader, backend)
    n_entries = reader.uvarint()
    if n_entries > MAX_SKIP_ENTRIES:
        raise WireError("block has implausibly many skip entries")
    skip_entries = [_read_skip_entry(reader, backend) for _ in range(n_entries)]
    used: set[int] = set()
    index_root = _read_node(reader, backend, objects, bits, used)
    reader.expect_end()
    if len(used) != len(objects):
        raise WireError("index tree does not cover every object")
    # skip entries are bound by the header's skiplist_root, not the
    # merkle_root — verify the binding here, where the backend is at
    # hand, so bit-rot the CRC missed cannot survive into a served VO
    if skiplist_root_hash(skip_entries, backend) != header.skiplist_root:
        raise WireError("skip entries do not match the header's skiplist_root")
    attrs_sum: Counter[str] = Counter()
    for leaf in index_root.iter_leaves():
        attrs_sum.update(leaf.attrs)
    return Block(
        header=header,
        objects=objects,
        index_root=index_root,
        skip_entries=skip_entries,
        attrs_sum=attrs_sum,
        sum_digest=sum_digest,
    )
