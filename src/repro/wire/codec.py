"""Low-level binary codec primitives.

VOs, deliveries and headers cross the network between SP and user, so
they need a canonical wire format.  The codec is deliberately simple
and deterministic: big-endian varints for integers, length-prefixed
byte strings, and tagged unions for VO node kinds.  Every ``Reader``
method validates lengths and raises :class:`WireError` rather than
over-reading — a malicious SP controls these bytes.
"""

from __future__ import annotations

from repro.errors import ReproError


class WireError(ReproError):
    """Malformed wire data (truncated, bad tag, out-of-range length)."""


#: Upper bound for any single length prefix — a decoded VO should never
#: need a gigabyte-scale field; this stops memory-bomb payloads early.
MAX_FIELD_LENGTH = 1 << 30


class Writer:
    """Appends canonical primitives to a byte buffer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def uvarint(self, value: int) -> "Writer":
        if value < 0:
            raise WireError("uvarint cannot encode negatives")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))
        return self

    def byte(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFF:
            raise WireError("byte out of range")
        self._parts.append(bytes([value]))
        return self

    def raw(self, data: bytes) -> "Writer":
        """Fixed-width bytes (caller knows the length from context)."""
        self._parts.append(data)
        return self

    def blob(self, data: bytes) -> "Writer":
        """Length-prefixed bytes."""
        self.uvarint(len(data))
        self._parts.append(data)
        return self

    def text(self, value: str) -> "Writer":
        return self.blob(value.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Consumes primitives from a byte buffer with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def uvarint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self._pos >= len(self._data):
                raise WireError("truncated uvarint")
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise WireError("uvarint too long")

    def byte(self) -> int:
        if self._pos >= len(self._data):
            raise WireError("truncated byte")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def raw(self, length: int) -> bytes:
        if length < 0 or self._pos + length > len(self._data):
            raise WireError("truncated fixed-width field")
        out = self._data[self._pos : self._pos + length]
        self._pos += length
        return out

    def blob(self) -> bytes:
        length = self.uvarint()
        if length > MAX_FIELD_LENGTH:
            raise WireError("field length exceeds sanity bound")
        return self.raw(length)

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("invalid UTF-8 in text field") from exc

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise WireError(f"{len(self._data) - self._pos} trailing byte(s)")

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos
