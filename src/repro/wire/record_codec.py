"""Versioned, CRC-checked codec for recorded serving-tier sessions.

A ``.vrec`` file captures every framed request and response that crossed
a transport during one recording window, in the order the tap observed
them.  The format is deliberately self-contained: a magic/version
preamble, a small string-to-string metadata map (scenario name, seed,
dataset shape — whatever the recorder wants replays to check), then a
sequence of frames.  Each frame body carries a monotonically increasing
sequence number, a logical channel id (one per client connection), a
direction tag, a timestamp in microseconds, and the raw wire payload
exactly as it appeared inside the 4-byte length framing.  The body is
length-prefixed and followed by its CRC32 so a truncated or bit-rotted
log fails loudly at the damaged frame instead of replaying garbage.

Like every decoder in :mod:`repro.wire`, these functions must survive
arbitrary bytes: anything malformed raises :class:`WireError`, never an
unhandled exception.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.wire.codec import Reader, WireError, Writer

#: First bytes of every ``.vrec`` file.
RECORD_MAGIC = b"VREC"

#: Bumped whenever the frame or preamble layout changes.
RECORD_VERSION = 1

#: A frame travelling client -> server (a request payload).
DIR_REQUEST = 0

#: A frame travelling server -> client (a response payload).
DIR_RESPONSE = 1

#: Sanity bound on the frame count of a single recording.
MAX_RECORD_FRAMES = 1 << 22

#: Sanity bound on the metadata map of a single recording.
MAX_META_ENTRIES = 256


@dataclass(frozen=True)
class RecordedFrame:
    """One framed payload as the tap saw it cross the wire."""

    seq: int
    channel: int
    direction: int
    timestamp_us: int
    payload: bytes


@dataclass(frozen=True)
class SessionRecording:
    """A complete recorded session: metadata plus ordered frames."""

    label: str
    meta: dict[str, str]
    frames: tuple[RecordedFrame, ...]


def write_frame(writer: Writer, frame: RecordedFrame) -> None:
    """Append one frame: a length-prefixed body followed by its CRC32."""
    body = (
        Writer()
        .uvarint(frame.seq)
        .uvarint(frame.channel)
        .byte(frame.direction)
        .uvarint(frame.timestamp_us)
        .blob(frame.payload)
        .getvalue()
    )
    writer.blob(body)
    writer.raw(struct.pack(">I", zlib.crc32(body)))


def read_frame(reader: Reader) -> RecordedFrame:
    """Read one frame, verifying its CRC before trusting the body."""
    body = reader.blob()
    (expected_crc,) = struct.unpack(">I", reader.raw(4))
    if zlib.crc32(body) != expected_crc:
        raise WireError("recorded frame failed its CRC check")
    inner = Reader(body)
    seq = inner.uvarint()
    channel = inner.uvarint()
    direction = inner.byte()
    if direction not in (DIR_REQUEST, DIR_RESPONSE):
        raise WireError(f"unknown frame direction {direction}")
    timestamp_us = inner.uvarint()
    payload = inner.blob()
    inner.expect_end()
    return RecordedFrame(
        seq=seq,
        channel=channel,
        direction=direction,
        timestamp_us=timestamp_us,
        payload=payload,
    )


def encode_recording(recording: SessionRecording) -> bytes:
    """Serialize a recording to canonical ``.vrec`` bytes.

    Metadata entries are written in sorted key order so the encoding of
    a given recording is unique — replay corpora are compared byte for
    byte in CI.
    """
    if len(recording.meta) > MAX_META_ENTRIES:
        raise WireError("recording metadata map too large")
    if len(recording.frames) > MAX_RECORD_FRAMES:
        raise WireError("recording frame count exceeds sanity bound")
    writer = Writer()
    writer.raw(RECORD_MAGIC)
    writer.byte(RECORD_VERSION)
    writer.text(recording.label)
    writer.uvarint(len(recording.meta))
    for key in sorted(recording.meta):
        writer.text(key)
        writer.text(recording.meta[key])
    writer.uvarint(len(recording.frames))
    last_seq = -1
    for frame in recording.frames:
        if frame.seq <= last_seq:
            raise WireError("recorded frames must have increasing seq")
        last_seq = frame.seq
        write_frame(writer, frame)
    return writer.getvalue()


def decode_recording(data: bytes) -> SessionRecording:
    """Parse ``.vrec`` bytes; raises :class:`WireError` on any damage."""
    reader = Reader(data)
    magic = reader.raw(len(RECORD_MAGIC))
    if magic != RECORD_MAGIC:
        raise WireError("not a .vrec recording (bad magic)")
    version = reader.byte()
    if version != RECORD_VERSION:
        raise WireError(f"unsupported recording version {version}")
    label = reader.text()
    meta_count = reader.uvarint()
    if meta_count > MAX_META_ENTRIES:
        raise WireError("recording metadata map too large")
    meta: dict[str, str] = {}
    for _ in range(meta_count):
        key = reader.text()
        if key in meta:
            raise WireError(f"duplicate metadata key {key!r}")
        meta[key] = reader.text()
    frame_count = reader.uvarint()
    if frame_count > MAX_RECORD_FRAMES:
        raise WireError("recording frame count exceeds sanity bound")
    frames: list[RecordedFrame] = []
    last_seq = -1
    for _ in range(frame_count):
        frame = read_frame(reader)
        if frame.seq <= last_seq:
            raise WireError("recorded frames must have increasing seq")
        last_seq = frame.seq
        frames.append(frame)
    reader.expect_end()
    return SessionRecording(label=label, meta=meta, frames=tuple(frames))
