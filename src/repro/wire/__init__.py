"""Canonical wire format for SP↔user messages."""

from repro.wire.codec import Reader, WireError, Writer
from repro.wire.vo_codec import (
    decode_response,
    decode_time_window_vo,
    encode_response,
    encode_time_window_vo,
    read_header,
    read_node,
    read_object,
    read_proof,
    read_value,
    write_header,
    write_node,
    write_object,
    write_proof,
    write_value,
)

__all__ = [
    "Reader",
    "WireError",
    "Writer",
    "decode_response",
    "decode_time_window_vo",
    "encode_response",
    "encode_time_window_vo",
    "read_header",
    "read_node",
    "read_object",
    "read_proof",
    "read_value",
    "write_header",
    "write_node",
    "write_object",
    "write_proof",
    "write_value",
]
