"""Serving-path caches: thread-safe LRU plus proof/VO-fragment memos.

VOs are recomputable from on-chain data, so the SP can share proving
work across overlapping queries and subscribers instead of re-proving.
:class:`~repro.api.service.ServiceEndpoint` owns one
:class:`ProofCache` and one :class:`VOFragmentCache` per endpoint and
threads them through :class:`~repro.core.prover.QueryProcessor`; see
``docs/API.md`` ("Scaling & caching") for sizing guidance.
"""

from repro.cache.fragments import (
    BlockFragment,
    ProofCache,
    VOFragmentCache,
    bind_groups,
    compute_disjoint_proof,
    multiset_signature,
)
from repro.cache.lru import CacheStats, LRUCache

__all__ = [
    "BlockFragment",
    "CacheStats",
    "LRUCache",
    "ProofCache",
    "VOFragmentCache",
    "bind_groups",
    "compute_disjoint_proof",
    "multiset_signature",
]
