"""Thread-safe, size-bounded LRU cache.

The serving path hits this from every worker of a
:class:`~repro.api.service.ServiceEndpoint` pool, so all operations
take an internal lock and are O(1).  Eviction is strict LRU: a ``get``
refreshes recency, a ``put`` over capacity evicts the coldest entry.

Statistics are cumulative for the cache's lifetime and cheap to read;
:meth:`LRUCache.stats` returns an immutable snapshot so callers can
diff two snapshots around a workload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: distinguishes "key absent" from a cached ``None`` value
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Immutable counters snapshot for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    max_entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup, 0.0 for an untouched cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_info(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A locked ``OrderedDict`` with an entry bound and hit accounting.

    ``max_entries <= 0`` builds a disabled cache: every lookup misses,
    every store is dropped.  That lets callers keep one unconditional
    code path and turn caching off purely through configuration.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` (refreshing recency), else ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the coldest entry if full."""
        if not self.enabled:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry; statistics survive."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self.max_entries,
            )
