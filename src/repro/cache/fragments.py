"""SP-side proof and VO-fragment memoisation.

The paper's key serving property is that verification objects are
*recomputable*: for a fixed block and query condition, the per-block
transcript (and every disjointness proof inside it) is a pure function
of on-chain data.  Overlapping time-window queries and multi-subscriber
deliveries therefore re-derive identical fragments — this module caches
them so the expensive ``ProveDisjoint`` calls happen once.

Two caches, both LRU-bounded and thread-safe:

* :class:`ProofCache` — memoises individual disjointness proofs keyed
  on ``(attribute multiset, clause)``.  Shared by per-node mismatch
  proofs, skip-entry proofs, and batch-group finalisation.
* :class:`VOFragmentCache` — memoises whole per-block VO fragments
  keyed on ``(height, CNF clauses, batch mode)``.  A hit skips the
  intra-block tree walk entirely.

Batch-mode fragments are stored in *normalised* form: mismatch sites
carry their clause but neither proof nor group id (group numbering is
query-global).  :func:`bind_groups` rebinds a normalised fragment to a
concrete query's group numbering — pure dataclass rebuilding, no
cryptography.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Mapping

from repro.accumulators.base import DisjointProof, MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.cache.lru import CacheStats, LRUCache
from repro.chain.object import DataObject
from repro.core.vo import VOBlock, VOExpandNode, VOMismatchNode, VONode, VOSkip

#: the (height, CNF clauses, batch mode) tuple a fragment is stored under
FragmentKey = tuple[int, tuple[frozenset[str], ...], bool]


def multiset_signature(attrs: Counter[str]) -> tuple[tuple[str, int], ...]:
    """Canonical hashable key for an attribute multiset."""
    return tuple(sorted(attrs.items()))


def compute_disjoint_proof(
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    attrs: Counter[str],
    clause: frozenset[str],
) -> DisjointProof:
    """``ProveDisjoint(attrs, clause)`` on raw attribute multisets.

    The one place that encodes both sides — every prover-side call site
    (query processor, batch collector, subscription engine, the cache
    below) funnels through here so keying and encoding stay in sync.
    """
    return accumulator.prove_disjoint(
        encoder.encode_multiset(attrs),
        encoder.encode_multiset(Counter(clause)),
    )


class ProofCache:
    """Memoised ``ProveDisjoint`` keyed on (multiset, clause)."""

    def __init__(
        self,
        accumulator: MultisetAccumulator,
        encoder: ElementEncoder,
        max_entries: int = 4096,
    ) -> None:
        self.accumulator = accumulator
        self.encoder = encoder
        self._lru = LRUCache(max_entries)

    @property
    def enabled(self) -> bool:
        return self._lru.enabled

    def prove_disjoint(
        self, attrs: Counter[str], clause: frozenset[str]
    ) -> tuple[DisjointProof, bool]:
        """``(proof, was_cached)`` for ``attrs`` vs the clause multiset.

        Distinct-but-equal multisets share an entry (content-keyed), so
        a skip-entry proof computed for one subscriber serves every
        later query that prunes the same attributes against the same
        clause.
        """
        key = (multiset_signature(attrs), clause)
        proof = self._lru.get(key)
        if proof is not None:
            return proof, True
        proof = compute_disjoint_proof(self.accumulator, self.encoder, attrs, clause)
        self._lru.put(key, proof)
        return proof, False

    def lookup(
        self, attrs: Counter[str], clause: frozenset[str]
    ) -> DisjointProof | None:
        """The cached proof, or ``None`` — never computes.

        The parallel proving path peeks first so only genuinely missing
        proofs are shipped to :class:`~repro.parallel.CryptoPool`
        workers, then :meth:`seed`\\ s the results back.
        """
        return self._lru.get((multiset_signature(attrs), clause))

    def seed(
        self, attrs: Counter[str], clause: frozenset[str], proof: DisjointProof
    ) -> None:
        """Install a proof computed elsewhere (e.g. by a pool worker)."""
        self._lru.put((multiset_signature(attrs), clause), proof)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> CacheStats:
        return self._lru.stats()


@dataclass(frozen=True)
class BlockFragment:
    """One cached step of the window walk: a skip or a block transcript.

    ``covered`` is how many window positions the entry consumes (the
    skip distance, or 1 for a block transcript).  ``clause_sums`` holds
    the per-clause attribute-multiset sums of the fragment's mismatch
    sites, in first-seen order — exactly what a batch collector needs
    to merge the fragment into a query-global group.  Empty for
    non-batch fragments, whose entry embeds individual proofs instead.
    """

    entry: VOBlock | VOSkip
    results: tuple[DataObject, ...]
    covered: int
    clause_sums: tuple[tuple[frozenset[str], Counter[str]], ...] = ()


class VOFragmentCache:
    """Per-block VO fragments keyed on (height, CNF clauses, batch)."""

    def __init__(self, max_entries: int = 512) -> None:
        self._lru = LRUCache(max_entries)

    @property
    def enabled(self) -> bool:
        return self._lru.enabled

    @staticmethod
    def key(
        height: int, clauses: tuple[frozenset[str], ...], batch: bool
    ) -> FragmentKey:
        return (height, clauses, batch)

    def get(self, key: FragmentKey) -> BlockFragment | None:
        fragment = self._lru.get(key)
        return fragment if isinstance(fragment, BlockFragment) else None

    def put(self, key: FragmentKey, fragment: BlockFragment) -> None:
        self._lru.put(key, fragment)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> CacheStats:
        return self._lru.stats()


def bind_groups(
    entry: VOBlock | VOSkip, group_of: Mapping[frozenset[str], int]
) -> VOBlock | VOSkip:
    """Rebind a normalised batch fragment to query-global group ids.

    Mismatch sites stored with ``proof=None, group=None`` get the group
    id of their clause; everything else is reused by reference.
    """
    if isinstance(entry, VOSkip):
        if entry.proof is None and entry.group is None:
            return replace(entry, group=group_of[entry.clause])
        return entry
    root = _bind_node(entry.root, group_of)
    if root is entry.root:
        return entry
    return replace(entry, root=root)


def _bind_node(node: VONode, group_of: Mapping[frozenset[str], int]) -> VONode:
    if isinstance(node, VOMismatchNode):
        if node.proof is None and node.group is None:
            return replace(node, group=group_of[node.clause])
        return node
    if isinstance(node, VOExpandNode):
        children = tuple(_bind_node(child, group_of) for child in node.children)
        if all(new is old for new, old in zip(children, node.children)):
            return node
        return replace(node, children=children)
    return node
