"""Pluggable chain storage: the BlockStore protocol and its backends.

The chain layer (:class:`repro.chain.chain.Blockchain`) owns *validation*
— header linkage, consensus proofs, Merkle binding — and delegates
*storage* to a :class:`BlockStore`.  Two backends ship:

* :class:`MemoryBlockStore` — a plain list; the default, and exactly the
  pre-storage behaviour.  An SP restart loses the chain.
* :class:`FileBlockStore` — an append-only **segment log** plus a
  fixed-width **offset index**, fsync'd on every append, with blocks
  serialized through the canonical
  :func:`repro.wire.block_codec.encode_block` codec.  An SP process can
  be killed and reopened with its chain — objects, intra/inter-block
  ADS, accumulator digests — intact and byte-identical.

File layout under ``data_dir``::

    MANIFEST.json     format/codec versions, backend name, prefix width,
                      plus caller metadata (setup seed, params, ...)
    seg-00000.log     segment files: [magic | height | len | crc32 | payload]*
    chain.idx         32-byte entries: height, segment, offset, length, crc32
    LOCK              advisory single-writer flock (empty; dies with holder)

Durability contract: a record is written and fsync'd to its segment
*before* its index entry is written and fsync'd.  A crash therefore
leaves at most one orphan record (data without index) or a torn tail;
both are detected on open and **truncated with a
:class:`StorageWarning`** — the chain simply resumes one block shorter.
A corrupt record that is *not* at the tail also truncates there (a chain
cannot have holes), dropping every later block; the warning says how
many.  Bit-rot inside a payload that the CRC happens to miss is caught
by the hash bindings instead: the codec checks the header's
``skiplist_root`` against the decoded skip entries, and the chain layer
re-validates each header's ``merkle_root`` against the decoded index
tree.

Both backends keep decoded blocks in memory — queries walk index trees
constantly, and the chain fits (the paper's SP is RAM-resident too); the
file backend is a durability layer, not a paging layer.
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zlib

try:
    import fcntl
except ImportError:  # non-POSIX: single-writer discipline is on the caller
    fcntl = None
from collections.abc import Iterator
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.chain.block import Block
from repro.crypto.backend import PairingBackend
from repro.errors import ReproError, StorageError
from repro.wire.block_codec import decode_block, encode_block

MANIFEST_NAME = "MANIFEST.json"
INDEX_NAME = "chain.idx"
LOCK_NAME = "LOCK"
SEGMENT_PATTERN = "seg-{:05d}.log"

#: storage format / codec identifiers checked on open
FORMAT_VERSION = 1
CODEC_NAME = "block-v1"

#: segment record header: magic(2) + height(8) + payload length(4) + crc32(4)
_RECORD_MAGIC = b"\xb1\x0c"
_REC_HEAD = struct.Struct(">2sQII")
#: index entry: height(8) + segment(4) + offset(8) + payload length(8) + crc32(4)
_IDX_ENTRY = struct.Struct(">QIQQI")

DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024


class StorageWarning(UserWarning):
    """Recoverable damage found while opening a chain directory."""


def _fsync_dir(path: Path) -> None:
    """Persist directory-entry changes (file creation / rename)."""
    if not hasattr(os, "O_DIRECTORY"):  # non-POSIX
        return
    fd = os.open(path, os.O_RDONLY | os.O_DIRECTORY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file_durably(path: Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``, fsync'd end to end.

    The temporary file is flushed and fsync'd *before* the rename and
    the directory entry is fsync'd after it — a crash either keeps the
    old file or installs the complete new one, never an empty or
    partial manifest.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _pid_is_alive(pid: int) -> bool:
    """Best-effort liveness probe for an advisory-lock holder."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def _read_lock_pid(handle) -> int | None:
    """The PID stamped into a LOCK file, or ``None`` if unreadable."""
    try:
        handle.seek(0)
        raw = handle.read(64)
        return int(raw.strip() or b"0") or None
    except (OSError, ValueError):
        return None


def acquire_dir_lock(data_dir: str | os.PathLike):
    """Take the single-writer advisory lock on a chain/stripe directory.

    Returns the open, PID-stamped LOCK file handle (close it to
    release), or ``None`` when the platform offers no ``flock`` *and*
    no stale lock file is present to arbitrate with.

    The lock file carries the holder's PID so failures are diagnosable:

    * ``flock`` held by a live process → :class:`StorageError` naming
      that PID (instead of an opaque "already open");
    * lock file left behind by a SIGKILL'd holder (the flock itself
      dies with the process) → the stale PID is detected, a
      :class:`StorageWarning` says the lock is being reclaimed, and the
      open proceeds;
    * platforms without ``fcntl`` fall back to PID-file locking with
      the same live/stale distinction.
    """
    path = Path(data_dir) / LOCK_NAME
    # r+b with create: "a" mode would pin every write to the end of the
    # file, and the PID stamp must overwrite from offset 0
    handle = os.fdopen(os.open(path, os.O_RDWR | os.O_CREAT, 0o644), "r+b")
    holder = _read_lock_pid(handle)
    if fcntl is not None:
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            who = f"process {holder}" if holder else "another store/process"
            raise StorageError(
                f"{data_dir} is already open for writing by {who} "
                f"(advisory {LOCK_NAME} is held)"
            ) from None
    elif holder is not None and holder != os.getpid() and _pid_is_alive(holder):
        handle.close()
        raise StorageError(
            f"{data_dir} is already open for writing by process {holder} "
            f"({LOCK_NAME} is live)"
        )
    if holder is not None and holder != os.getpid() and not _pid_is_alive(holder):
        warnings.warn(
            f"{data_dir}: reclaiming stale {LOCK_NAME} left by dead process "
            f"{holder} (killed without closing its store)",
            StorageWarning,
            stacklevel=3,
        )
    handle.seek(0)
    handle.truncate()
    handle.write(str(os.getpid()).encode("ascii"))
    handle.flush()
    return handle


def release_dir_lock(handle) -> None:
    """Release a lock from :func:`acquire_dir_lock` cleanly.

    Clears the PID stamp before closing, so a stamp found by a later
    open really means its holder died without closing — that is what
    keeps the stale-lock reclaim warning meaningful instead of firing
    on every clean reopen.
    """
    if handle is None:
        return
    try:
        handle.seek(0)
        handle.truncate()
        handle.flush()
    except (OSError, ValueError):
        pass  # releasing best-effort: the flock dies with the close anyway
    try:
        handle.close()
    except OSError:
        pass


@runtime_checkable
class BlockStore(Protocol):
    """What the chain layer needs from a storage backend.

    ``append`` must make the block durable before returning (to
    whatever standard the backend claims); reads may be served from
    memory.  The chain layer guarantees blocks arrive validated and in
    height order.
    """

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Block]: ...

    def block(self, height: int) -> Block: ...

    def append(self, block: Block) -> None: ...

    def sync(self) -> None: ...

    def close(self) -> None: ...


class MemoryBlockStore:
    """The default backend: blocks live in a Python list."""

    def __init__(self) -> None:
        self._blocks: list[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block(self, height: int) -> Block:
        return self._blocks[height]

    def append(self, block: Block) -> None:
        self._blocks.append(block)

    def sync(self) -> None:
        pass

    def close(self) -> None:
        pass


#: manifest keys every chain directory must carry (striped deployments
#: add a "striping" section on top)
_MANIFEST_REQUIRED = ("format_version", "codec", "backend", "bits")


def load_manifest(data_dir: str | os.PathLike) -> dict:
    """Read and sanity-check a chain directory's manifest.

    Every failure mode — missing file, truncated or non-JSON content, a
    JSON value that is not an object, missing required keys — raises a
    typed :class:`~repro.errors.StorageError` naming the path, never a
    bare ``json.JSONDecodeError``/``KeyError``: callers handle "this
    directory is not a usable chain" as one condition.
    """
    path = Path(data_dir) / MANIFEST_NAME
    if not path.exists():
        raise StorageError(f"{data_dir} is not a chain directory (no {MANIFEST_NAME})")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise StorageError(
            f"corrupt or truncated manifest {path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise StorageError(
            f"corrupt manifest {path}: expected a JSON object, "
            f"got {type(manifest).__name__}"
        )
    missing = [key for key in _MANIFEST_REQUIRED if key not in manifest]
    if missing:
        raise StorageError(
            f"corrupt manifest {path}: missing required key(s) {missing}"
        )
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported storage format {manifest.get('format_version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    if manifest.get("codec") != CODEC_NAME:
        raise StorageError(
            f"unsupported block codec {manifest.get('codec')!r} "
            f"(this build reads {CODEC_NAME!r})"
        )
    return manifest


class FileBlockStore:
    """Durable backend: append-only segment log + offset index.

    Use the :meth:`create` / :meth:`open` classmethods; ``create``
    refuses an already-initialised directory and ``open`` refuses a
    missing one, so the two cannot be confused silently.

    ``fsync=False`` trades crash-durability for append speed (the OS
    still sees every write immediately) — useful for bulk loads and
    benchmarks; flip it back for serving.
    """

    def __init__(
        self,
        data_dir: str | os.PathLike,
        backend: PairingBackend,
        bits: int,
        *,
        manifest: dict,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.backend = backend
        self.bits = bits
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.manifest = manifest
        self._blocks: list[Block] = []
        self._segment_id = 0
        self._segment_file = None
        self._index_file = None
        self._lock_file = None
        self._closed = False
        self._acquire_lock()
        try:
            self._recover()
            self._open_for_append()
        except Exception:
            # a failed open must not hold the lock or leave a stale stamp
            release_dir_lock(self._lock_file)
            self._lock_file = None
            raise

    # -- construction ------------------------------------------------------
    @classmethod
    def create(
        cls,
        data_dir: str | os.PathLike,
        backend: PairingBackend,
        bits: int,
        *,
        meta: dict | None = None,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "FileBlockStore":
        """Initialise a fresh chain directory (must not already be one).

        ``meta`` is opaque caller metadata persisted in the manifest —
        the bootstrap layer stores the trusted-setup parameters there so
        a later :func:`repro.storage.bootstrap.open_chain_setup` can
        reconstruct the accumulator and encoder.
        """
        path = Path(data_dir)
        if (path / MANIFEST_NAME).exists():
            raise StorageError(
                f"{data_dir} already holds a chain; use FileBlockStore.open()"
            )
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": FORMAT_VERSION,
            "codec": CODEC_NAME,
            "backend": backend.name,
            "bits": bits,
            "meta": dict(meta or {}),
        }
        _write_file_durably(
            path / MANIFEST_NAME,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        return cls(
            path,
            backend,
            bits,
            manifest=manifest,
            fsync=fsync,
            segment_bytes=segment_bytes,
        )

    @classmethod
    def open(
        cls,
        data_dir: str | os.PathLike,
        backend: PairingBackend,
        *,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "FileBlockStore":
        """Reopen an existing chain directory, recovering the log."""
        manifest = load_manifest(data_dir)
        if "striping" in manifest:
            raise StorageError(
                f"{data_dir} is one stripe node of a striped deployment; "
                "open it through StripedBlockStore / open_chain_setup"
            )
        if manifest["backend"] != backend.name:
            raise StorageError(
                f"chain was written with backend {manifest['backend']!r}, "
                f"opened with {backend.name!r}"
            )
        return cls(
            Path(data_dir),
            backend,
            manifest["bits"],
            manifest=manifest,
            fsync=fsync,
            segment_bytes=segment_bytes,
        )

    @property
    def meta(self) -> dict:
        """Caller metadata recorded at :meth:`create` time."""
        return self.manifest.get("meta", {})

    # -- reads -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block(self, height: int) -> Block:
        return self._blocks[height]

    # -- append ------------------------------------------------------------
    def append(self, block: Block) -> None:
        if self._closed:
            raise StorageError("block store is closed")
        payload = encode_block(self.backend, block)
        crc = zlib.crc32(payload)
        height = len(self._blocks)
        if self._segment_file.tell() >= self.segment_bytes:
            self._rotate_segment()
        offset = self._segment_file.tell()
        self._segment_file.write(
            _REC_HEAD.pack(_RECORD_MAGIC, height, len(payload), crc)
        )
        self._segment_file.write(payload)
        self._flush(self._segment_file)
        self._index_file.write(
            _IDX_ENTRY.pack(height, self._segment_id, offset, len(payload), crc)
        )
        self._flush(self._index_file)
        self._blocks.append(block)

    def sync(self) -> None:
        if self._closed:
            return
        self._segment_file.flush()
        os.fsync(self._segment_file.fileno())
        self._index_file.flush()
        os.fsync(self._index_file.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._segment_file.close()
        self._index_file.close()
        release_dir_lock(self._lock_file)  # clears the PID stamp + flock
        self._lock_file = None
        self._closed = True

    def __enter__(self) -> "FileBlockStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------
    def _acquire_lock(self) -> None:
        """Single-writer guard: two stores on one directory would
        interleave appends and make the next recovery truncate committed
        blocks.  ``flock`` is advisory and dies with the process, so a
        crashed writer never wedges the directory; a stale PID-stamped
        LOCK from a SIGKILL'd holder is reclaimed with a warning (see
        :func:`acquire_dir_lock`)."""
        self._lock_file = acquire_dir_lock(self.data_dir)

    def _flush(self, handle) -> None:
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def _segment_path(self, segment_id: int) -> Path:
        return self.data_dir / SEGMENT_PATTERN.format(segment_id)

    def _rotate_segment(self) -> None:
        self._segment_file.close()
        self._segment_id += 1
        self._segment_file = open(self._segment_path(self._segment_id), "ab")
        if self.fsync:
            # a record fsync'd into a file whose directory entry was
            # never fsync'd is not durable: persist the creation too
            _fsync_dir(self.data_dir)

    def _open_for_append(self) -> None:
        created = not self._segment_path(self._segment_id).exists()
        self._segment_file = open(self._segment_path(self._segment_id), "ab")
        self._index_file = open(self.data_dir / INDEX_NAME, "ab")
        if created and self.fsync:
            _fsync_dir(self.data_dir)

    def _recover(self) -> None:
        """Replay the offset index, truncating any damaged tail.

        Every deviation — torn index entry, missing/short segment, bad
        magic, CRC mismatch, undecodable payload, orphan segment bytes —
        resolves the same way: the log is truncated at the last block
        that checks out, with a :class:`StorageWarning` naming what was
        dropped.  Damage earlier in the log *also* truncates from the
        damage onward (a chain cannot have holes); the warning then
        reports how many trailing blocks went with it.
        """
        index_path = self.data_dir / INDEX_NAME
        raw_index = index_path.read_bytes() if index_path.exists() else b""
        if len(raw_index) % _IDX_ENTRY.size:
            self._warn(
                f"offset index has {len(raw_index) % _IDX_ENTRY.size} torn "
                "trailing byte(s); dropping them"
            )
            raw_index = raw_index[: len(raw_index) - len(raw_index) % _IDX_ENTRY.size]

        entries = [
            _IDX_ENTRY.unpack_from(raw_index, pos)
            for pos in range(0, len(raw_index), _IDX_ENTRY.size)
        ]
        segments: dict[int, bytes] = {}
        good = 0
        damaged = False
        for expected_height, entry in enumerate(entries):
            height, segment_id, offset, length, crc = entry
            reason = None
            if height != expected_height:
                reason = f"index entry {expected_height} claims height {height}"
            else:
                if segment_id not in segments:
                    seg_path = self._segment_path(segment_id)
                    segments[segment_id] = (
                        seg_path.read_bytes() if seg_path.exists() else b""
                    )
                data = segments[segment_id]
                end = offset + _REC_HEAD.size + length
                if end > len(data):
                    reason = f"record for block {height} is truncated"
                else:
                    magic, rec_height, rec_length, rec_crc = _REC_HEAD.unpack_from(
                        data, offset
                    )
                    payload = data[offset + _REC_HEAD.size : end]
                    if magic != _RECORD_MAGIC:
                        reason = f"record for block {height} has a bad magic"
                    elif (rec_height, rec_length, rec_crc) != (height, length, crc):
                        reason = f"record for block {height} disagrees with the index"
                    elif zlib.crc32(payload) != crc:
                        reason = f"record for block {height} fails its CRC"
                    else:
                        try:
                            block = decode_block(self.backend, payload, self.bits)
                        except ReproError as exc:
                            reason = f"block {height} does not decode: {exc}"
                        else:
                            self._blocks.append(block)
                            good += 1
                            continue
            self._warn(
                f"{reason}; truncating {len(entries) - good} block(s), chain "
                f"resumes at height {good}"
            )
            damaged = True
            break

        self._truncate_tail(entries[:good], damaged)

        # position the appender after the last good record
        self._segment_id = entries[good - 1][1] if good else 0

    def _truncate_tail(self, good_entries: list, damaged: bool) -> None:
        """Cut index and segments back to the good prefix.

        Geometry comes from the last *good* record — the fields of a
        corrupt index entry are untrustworthy.  When nothing was
        damaged this still drops crash orphans (segment bytes past the
        last indexed record, or whole unindexed segments), each with
        its own warning.

        Fail-safe: the crash model leaves **at most one** complete
        unindexed record (segment fsync happens before the index
        append).  Finding more than one intact record beyond the index
        means the index itself was lost or rolled back — truncating
        would destroy a recoverable chain, so that shape raises
        :class:`StorageError` and leaves every file untouched.
        """
        if good_entries:
            _height, last_segment, last_offset, last_length, _crc = good_entries[-1]
            tail_end = last_offset + _REC_HEAD.size + last_length
        else:
            last_segment, tail_end = 0, 0

        if not damaged:
            orphans = self._count_orphan_records(last_segment, tail_end, limit=2)
            if orphans > 1:
                raise StorageError(
                    f"{self.data_dir}: offset index is behind the segment log "
                    f"by {orphans}+ intact record(s) — the index was lost, not "
                    "torn; refusing to truncate (restore chain.idx or recover "
                    "manually)"
                )

        index_path = self.data_dir / INDEX_NAME
        if index_path.exists():
            with open(index_path, "ab") as handle:
                handle.truncate(len(good_entries) * _IDX_ENTRY.size)
                os.fsync(handle.fileno())

        seg_path = self._segment_path(last_segment)
        if seg_path.exists():
            size = seg_path.stat().st_size
            if size > tail_end:
                if not damaged:
                    self._warn(
                        f"{size - tail_end} orphan byte(s) after the last indexed "
                        "record (crash during append); dropping them"
                    )
                with open(seg_path, "ab") as handle:
                    handle.truncate(tail_end)
                    os.fsync(handle.fileno())

        segment_id = last_segment + 1
        while (path := self._segment_path(segment_id)).exists():
            if not damaged:
                self._warn(f"orphan segment {path.name}; dropping it")
            path.unlink()
            segment_id += 1

    def _count_orphan_records(
        self, tail_segment: int, tail_end: int, limit: int
    ) -> int:
        """Complete, CRC-valid records beyond the indexed log (≤ limit)."""
        count = 0
        segment_id = tail_segment
        start = tail_end
        while count < limit:
            seg_path = self._segment_path(segment_id)
            if not seg_path.exists():
                break
            data = seg_path.read_bytes()
            pos = start
            while count < limit and pos + _REC_HEAD.size <= len(data):
                magic, _height, length, crc = _REC_HEAD.unpack_from(data, pos)
                end = pos + _REC_HEAD.size + length
                if magic != _RECORD_MAGIC or end > len(data):
                    return count  # torn/garbage tail: not an intact record
                if zlib.crc32(data[pos + _REC_HEAD.size : end]) != crc:
                    return count
                count += 1
                pos = end
            segment_id += 1
            start = 0
        return count

    def _warn(self, message: str) -> None:
        warnings.warn(f"{self.data_dir}: {message}", StorageWarning, stacklevel=3)
