"""Replicated, erasure-coded block storage across N stripe directories.

:class:`StripedBlockStore` implements the same :class:`~repro.storage.
store.BlockStore` protocol as :class:`~repro.storage.store.
FileBlockStore`, but every appended block is split by the
:class:`~repro.storage.ec.ShiftXORCode` into ``k`` data stripes plus
``m`` parity stripes, one per storage directory ("node") — point the
node directories at separate disks and the chain survives up to ``m``
lost disks.  Each node directory is self-describing::

    node-00/
        MANIFEST.json   full deployment manifest (identical on every node)
        NODE.json       which stripe slot this directory holds
        seg-00000.log   stripe records: [magic | height | stripe_len |
                        stripe_crc | payload_len | payload_crc | stripe]*
        stripe.idx      44-byte entries mirroring the record headers
        LOCK            PID-stamped advisory single-writer lock

Durability contract per append: every node's stripe record is written
and fsync'd before any node's index entry — the same fsync-before-index
ordering as the plain file store, now across directories (and encoded
as the ``fsync-discipline`` vlint rule).

Robustness machinery:

* **Read-repair on open** — a missing or CRC-bad stripe found while
  replaying the logs is reconstructed from the surviving stripes,
  written back in place (or appended, for a node that crashed behind
  its peers) and counted, each with a :class:`StorageWarning`.  A node
  whose directory is gone entirely comes back through the scrubber.
* **Incremental scrubbing** — :meth:`StripedBlockStore.scrub_step`
  verifies a batch of heights against the recomputed stripes (CRC *and*
  parity consistency), repairs deviations in place, rebuilds offline
  node directories from the in-memory chain, and advances a cursor so
  an endpoint-owned periodic task spreads the work.  ``python -m
  repro.storage scrub`` runs a full pass from the command line.
* **SP failover** — opening needs only a surviving quorum (any ``k`` of
  the ``k + m`` directories); recovered headers are re-validated by the
  chain layer exactly as for the plain store, so a standby service
  process can take over from whatever directories outlived the primary.

Like the plain file store, decoded blocks stay in memory: the stripe
layer is a durability layer, not a paging layer — which is also why a
store that has gone *below* quorum on disk keeps serving verified
queries from RAM while the scrubber works on getting redundancy back.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.chain.block import Block
from repro.crypto.backend import PairingBackend
from repro.errors import ReproError, StorageError
from repro.storage.ec import ShiftXORCode
from repro.storage.store import (
    CODEC_NAME,
    DEFAULT_SEGMENT_BYTES,
    FORMAT_VERSION,
    MANIFEST_NAME,
    StorageWarning,
    _fsync_dir,
    _write_file_durably,
    acquire_dir_lock,
    load_manifest,
    release_dir_lock,
)
from repro.wire.block_codec import decode_block, encode_block

NODE_NAME = "NODE.json"
STRIPE_INDEX_NAME = "stripe.idx"
NODE_DIR_PATTERN = "node-{:02d}"
SEGMENT_PATTERN = "seg-{:05d}.log"

#: stripe record header: magic(2) + height(8) + stripe_len(4) +
#: stripe_crc(4) + payload_len(4) + payload_crc(4)
_SREC_MAGIC = b"\xb1\x5c"
_SREC_HEAD = struct.Struct(">2sQIIII")
#: index entry: height(8) + segment(4) + offset(8) + stripe_len(4) +
#: stripe_crc(4) + payload_len(4) + payload_crc(4)
_SIDX_ENTRY = struct.Struct(">QIQIIII")

_NODE_DIR_RE = re.compile(r"node-(\d+)$")


@dataclass
class ScrubReport:
    """What one scrub pass (or step) found and fixed."""

    checked: int = 0  #: stripe records verified against recomputed bytes
    repaired: int = 0  #: damaged records rewritten in place or re-appended
    rebuilt_nodes: int = 0  #: node directories reconstructed from scratch
    offline_nodes: int = 0  #: nodes still unreachable after the pass
    wrapped: bool = False  #: the cursor completed a full cycle

    def merge(self, other: "ScrubReport") -> None:
        self.checked += other.checked
        self.repaired += other.repaired
        self.rebuilt_nodes += other.rebuilt_nodes
        self.offline_nodes = other.offline_nodes
        self.wrapped = self.wrapped or other.wrapped


@dataclass
class _IndexEntry:
    height: int
    segment: int
    offset: int
    stripe_len: int
    stripe_crc: int
    payload_len: int
    payload_crc: int


@dataclass
class _ScanRecord:
    """One height's stripe as a node's log describes it."""

    entry: _IndexEntry
    stripe: bytes | None  #: validated bytes, or None when damaged


class _NodeLog:
    """One stripe directory: segment log + index + lock, no coding logic."""

    def __init__(
        self,
        path: Path,
        node_index: int,
        *,
        fsync: bool,
        segment_bytes: int,
        read_hook: Callable[[Path], None] | None = None,
    ) -> None:
        self.path = path
        self.node_index = node_index
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.read_hook = read_hook
        self.entries: list[_IndexEntry] = []
        self._segment_id = 0
        self._segment_file = None
        self._index_file = None
        self._lock_file = acquire_dir_lock(path)

    # -- construction ------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Path,
        node_index: int,
        nodes: int,
        manifest_text: str,
        *,
        fsync: bool,
        segment_bytes: int,
        read_hook: Callable[[Path], None] | None = None,
    ) -> "_NodeLog":
        path.mkdir(parents=True, exist_ok=True)
        if (path / MANIFEST_NAME).exists():
            raise StorageError(f"{path} already holds a chain or stripe node")
        _write_file_durably(path / MANIFEST_NAME, manifest_text.encode())
        node_info = {"node_index": node_index, "nodes": nodes}
        _write_file_durably(
            path / NODE_NAME, (json.dumps(node_info, sort_keys=True) + "\n").encode()
        )
        return cls(
            path,
            node_index,
            fsync=fsync,
            segment_bytes=segment_bytes,
            read_hook=read_hook,
        )

    def _read_bytes(self, path: Path) -> bytes:
        if self.read_hook is not None:
            self.read_hook(path)
        return path.read_bytes()

    def _segment_path(self, segment_id: int) -> Path:
        return self.path / SEGMENT_PATTERN.format(segment_id)

    def _flush(self, handle) -> None:
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    # -- scan --------------------------------------------------------------
    def scan(self, warn: Callable[[str], None]) -> list[_ScanRecord]:
        """Replay this node's index; damaged records stay in the list.

        Unlike the plain store's recovery, a mid-log CRC failure does
        *not* truncate: later stripes are still good parity material,
        and the damaged one is exactly what read-repair reconstructs.
        Only structural index damage (torn tail bytes, out-of-order
        heights) cuts the node's view short.
        """
        index_path = self.path / STRIPE_INDEX_NAME
        raw = self._read_bytes(index_path) if index_path.exists() else b""
        torn = len(raw) % _SIDX_ENTRY.size
        if torn:
            warn(f"{self.path.name}: {torn} torn index byte(s) dropped")
            raw = raw[: len(raw) - torn]
        segments: dict[int, bytes] = {}
        records: list[_ScanRecord] = []
        for pos in range(0, len(raw), _SIDX_ENTRY.size):
            entry = _IndexEntry(*_SIDX_ENTRY.unpack_from(raw, pos))
            if entry.height != len(records):
                warn(
                    f"{self.path.name}: index entry {len(records)} claims "
                    f"height {entry.height}; dropping the rest of this node's log"
                )
                break
            if entry.segment not in segments:
                seg_path = self._segment_path(entry.segment)
                try:
                    segments[entry.segment] = (
                        self._read_bytes(seg_path) if seg_path.exists() else b""
                    )
                except OSError:
                    segments[entry.segment] = b""
            data = segments[entry.segment]
            records.append(_ScanRecord(entry, self._validate(entry, data)))
        self.entries = [record.entry for record in records]
        return records

    @staticmethod
    def _validate(entry: _IndexEntry, data: bytes) -> bytes | None:
        end = entry.offset + _SREC_HEAD.size + entry.stripe_len
        if end > len(data):
            return None
        head = _SREC_HEAD.unpack_from(data, entry.offset)
        magic, height, stripe_len, stripe_crc, payload_len, payload_crc = head
        if magic != _SREC_MAGIC or (
            height,
            stripe_len,
            stripe_crc,
            payload_len,
            payload_crc,
        ) != (
            entry.height,
            entry.stripe_len,
            entry.stripe_crc,
            entry.payload_len,
            entry.payload_crc,
        ):
            return None
        stripe = data[entry.offset + _SREC_HEAD.size : end]
        if zlib.crc32(stripe) != entry.stripe_crc:
            return None
        return stripe

    def read_record(self, height: int) -> bytes | None:
        """Re-read one stripe from disk, validating it (scrub path)."""
        if height >= len(self.entries):
            return None
        entry = self.entries[height]
        seg_path = self._segment_path(entry.segment)
        try:
            data = self._read_bytes(seg_path)
        except OSError:
            return None
        return self._validate(entry, data)

    # -- append / repair ---------------------------------------------------
    def open_for_append(self) -> None:
        self._segment_id = self.entries[-1].segment if self.entries else 0
        created = not self._segment_path(self._segment_id).exists()
        self._segment_file = open(self._segment_path(self._segment_id), "ab")
        self._index_file = open(self.path / STRIPE_INDEX_NAME, "ab")
        if created and self.fsync:
            _fsync_dir(self.path)

    def append(
        self, height: int, stripe: bytes, payload_len: int, payload_crc: int
    ) -> None:
        if height != len(self.entries):
            raise StorageError(
                f"{self.path.name}: append at height {height} but node "
                f"holds {len(self.entries)} record(s)"
            )
        stripe_crc = zlib.crc32(stripe)
        if self._segment_file.tell() >= self.segment_bytes:
            self._segment_file.close()
            self._segment_id += 1
            self._segment_file = open(self._segment_path(self._segment_id), "ab")
            if self.fsync:
                _fsync_dir(self.path)
        offset = self._segment_file.tell()
        self._segment_file.write(
            _SREC_HEAD.pack(
                _SREC_MAGIC, height, len(stripe), stripe_crc, payload_len, payload_crc
            )
        )
        self._segment_file.write(stripe)
        self._flush(self._segment_file)
        entry = _IndexEntry(
            height,
            self._segment_id,
            offset,
            len(stripe),
            stripe_crc,
            payload_len,
            payload_crc,
        )
        self._index_file.write(
            _SIDX_ENTRY.pack(
                entry.height,
                entry.segment,
                entry.offset,
                entry.stripe_len,
                entry.stripe_crc,
                entry.payload_len,
                entry.payload_crc,
            )
        )
        self._flush(self._index_file)
        self.entries.append(entry)

    def rewrite(self, height: int, stripe: bytes) -> None:
        """Repair one record in place (geometry never changes: stripe
        lengths are deterministic in the payload length)."""
        entry = self.entries[height]
        if len(stripe) != entry.stripe_len:
            raise StorageError(
                f"{self.path.name}: repair stripe length {len(stripe)} != "
                f"recorded {entry.stripe_len} at height {height}"
            )
        entry.stripe_crc = zlib.crc32(stripe)
        with open(self._segment_path(entry.segment), "r+b") as handle:
            handle.seek(entry.offset)
            handle.write(
                _SREC_HEAD.pack(
                    _SREC_MAGIC,
                    entry.height,
                    entry.stripe_len,
                    entry.stripe_crc,
                    entry.payload_len,
                    entry.payload_crc,
                )
            )
            handle.write(stripe)
            self._flush(handle)
        # the index entry carries the CRC too: rewrite it in place,
        # after the segment data it points at is already durable
        with open(self.path / STRIPE_INDEX_NAME, "r+b") as handle:
            handle.seek(height * _SIDX_ENTRY.size)
            handle.write(
                _SIDX_ENTRY.pack(
                    entry.height,
                    entry.segment,
                    entry.offset,
                    entry.stripe_len,
                    entry.stripe_crc,
                    entry.payload_len,
                    entry.payload_crc,
                )
            )
            self._flush(handle)

    def truncate_to(self, count: int) -> int:
        """Drop records at heights >= ``count``; returns how many went."""
        dropped = len(self.entries) - count
        if dropped <= 0:
            return 0
        keep = self.entries[:count]
        with open(self.path / STRIPE_INDEX_NAME, "ab") as handle:
            handle.truncate(count * _SIDX_ENTRY.size)
            os.fsync(handle.fileno())
        if keep:
            last = keep[-1]
            tail_segment = last.segment
            tail_end = last.offset + _SREC_HEAD.size + last.stripe_len
        else:
            tail_segment, tail_end = 0, 0
        seg_path = self._segment_path(tail_segment)
        if seg_path.exists() and seg_path.stat().st_size > tail_end:
            with open(seg_path, "ab") as handle:
                handle.truncate(tail_end)
                os.fsync(handle.fileno())
        segment_id = tail_segment + 1
        while (path := self._segment_path(segment_id)).exists():
            path.unlink()
            segment_id += 1
        self.entries = keep
        return dropped

    def drop_orphan_bytes(self, warn: Callable[[str], None]) -> None:
        """Remove segment bytes past the last indexed record (crash tail)."""
        if self.entries:
            last = self.entries[-1]
            tail_segment = last.segment
            tail_end = last.offset + _SREC_HEAD.size + last.stripe_len
        else:
            tail_segment, tail_end = 0, 0
        seg_path = self._segment_path(tail_segment)
        if seg_path.exists():
            size = seg_path.stat().st_size
            if size > tail_end:
                warn(
                    f"{self.path.name}: {size - tail_end} orphan byte(s) "
                    "after the last indexed record; dropping them"
                )
                with open(seg_path, "ab") as handle:
                    handle.truncate(tail_end)
                    os.fsync(handle.fileno())
        segment_id = tail_segment + 1
        while (path := self._segment_path(segment_id)).exists():
            warn(f"{self.path.name}: orphan segment {path.name}; dropping it")
            path.unlink()
            segment_id += 1

    # -- lifecycle ---------------------------------------------------------
    def sync(self) -> None:
        for handle in (self._segment_file, self._index_file):
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())

    def close(self) -> None:
        for handle in (self._segment_file, self._index_file):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        release_dir_lock(self._lock_file)  # clears the PID stamp + flock
        self._segment_file = self._index_file = self._lock_file = None


def node_dir_index(path: str | os.PathLike) -> int | None:
    """The stripe slot a directory name claims (``node-03`` -> 3)."""
    match = _NODE_DIR_RE.search(Path(path).name)
    return int(match.group(1)) if match else None


def discover_stripe_dirs(
    target: str | os.PathLike | Sequence[str | os.PathLike],
) -> list[Path] | None:
    """Resolve a striped deployment's node directories, or ``None``.

    Accepts the three shapes the failover story needs:

    * an explicit sequence of node directories (a surviving quorum);
    * a parent directory holding ``node-*`` children;
    * a single node directory (its siblings are found via the parent).

    A plain (non-striped) chain directory resolves to ``None`` so the
    caller falls through to :class:`~repro.storage.store.FileBlockStore`.
    """
    if isinstance(target, (list, tuple)):
        return [Path(p) for p in target]
    path = Path(target)
    manifest_path = path / MANIFEST_NAME
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            return None
        if isinstance(manifest, dict) and "striping" in manifest:
            # a single node dir: pull in its siblings
            siblings = sorted(
                p
                for p in path.parent.glob("node-*")
                if p.is_dir() and node_dir_index(p) is not None
            )
            return siblings or [path]
        return None
    children = sorted(
        p
        for p in path.glob("node-*")
        if p.is_dir() and (p / MANIFEST_NAME).exists() and node_dir_index(p) is not None
    )
    return children if children else None


class StripedBlockStore:
    """Erasure-coded :class:`BlockStore` over ``k + m`` directories."""

    def __init__(
        self,
        slots: list[Path | None],
        backend: PairingBackend,
        bits: int,
        *,
        manifest: dict,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        striping = manifest.get("striping")
        if not isinstance(striping, dict):
            raise StorageError("manifest has no striping section")
        self.code = ShiftXORCode(int(striping["k"]), int(striping["m"]))
        if len(slots) != self.code.nodes:
            raise StorageError(
                f"expected {self.code.nodes} node slots, got {len(slots)}"
            )
        self.backend = backend
        self.bits = bits
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.manifest = manifest
        self.read_hook: Callable[[Path], None] | None = None
        self._slots: list[Path | None] = list(slots)
        self._nodes: list[_NodeLog | None] = [None] * self.code.nodes
        self._blocks: list[Block] = []
        self._payload_meta: list[tuple[int, int]] = []  # (payload_len, crc)
        self._lock = threading.Lock()
        self._closed = False
        self._below_quorum_warned = False
        # health counters (cumulative across this store's lifetime)
        self._repaired_stripes = 0
        self._rebuilt_nodes = 0
        self._degraded_found = 0
        self._scrub_cycles = 0
        self._scrub_position = 0
        self._scrub_checked = 0

    # -- construction ------------------------------------------------------
    @classmethod
    def create(
        cls,
        target: str | os.PathLike | Sequence[str | os.PathLike],
        backend: PairingBackend,
        bits: int,
        *,
        stripes: int = 4,
        parity: int = 2,
        meta: dict | None = None,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "StripedBlockStore":
        """Initialise ``stripes + parity`` fresh node directories.

        ``target`` is either a parent directory (``node-00`` ..
        ``node-NN`` are created inside it — the single-host layout) or
        an explicit sequence of ``stripes + parity`` directories, one
        per disk.
        """
        code = ShiftXORCode(stripes, parity)
        if isinstance(target, (list, tuple)):
            paths = [Path(p) for p in target]
            if len(paths) != code.nodes:
                raise StorageError(
                    f"k={stripes}, m={parity} needs {code.nodes} stripe "
                    f"directories, got {len(paths)}"
                )
        else:
            parent = Path(target)
            if (parent / MANIFEST_NAME).exists():
                raise StorageError(
                    f"{target} already holds a plain chain; striped deployments "
                    "use a parent directory of node-* stripe directories"
                )
            paths = [parent / NODE_DIR_PATTERN.format(i) for i in range(code.nodes)]
        for path in paths:
            if (path / MANIFEST_NAME).exists():
                raise StorageError(f"{path} already holds a chain or stripe node")
        manifest = {
            "format_version": FORMAT_VERSION,
            "codec": CODEC_NAME,
            "backend": backend.name,
            "bits": bits,
            "striping": {"k": stripes, "m": parity, "nodes": code.nodes},
            "meta": dict(meta or {}),
        }
        manifest_text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        store = cls(
            list(paths),
            backend,
            bits,
            manifest=manifest,
            fsync=fsync,
            segment_bytes=segment_bytes,
        )
        try:
            for index, path in enumerate(paths):
                node = _NodeLog.create(
                    path,
                    index,
                    code.nodes,
                    manifest_text,
                    fsync=fsync,
                    segment_bytes=segment_bytes,
                    read_hook=store._read_hook,
                )
                node.open_for_append()
                store._nodes[index] = node
        except Exception:
            store.close()
            raise
        return store

    @classmethod
    def open(
        cls,
        target: str | os.PathLike | Sequence[str | os.PathLike],
        backend: PairingBackend,
        *,
        fsync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "StripedBlockStore":
        """Reopen a striped deployment from whatever directories survive.

        ``target`` accepts a parent directory, one node directory, or an
        explicit (possibly partial) sequence of node directories.  Any
        quorum able to reconstruct every block is enough; everything
        recoverable is read-repaired on the way in, and wholly missing
        nodes are left to the scrubber.
        """
        dirs = discover_stripe_dirs(target)
        if not dirs:
            raise StorageError(
                f"{target} does not look like a striped deployment "
                "(no node-* stripe directories found)"
            )
        manifest = None
        for path in dirs:
            try:
                manifest = load_manifest(path)
                break
            except StorageError:
                continue
        if manifest is None:
            raise StorageError(
                f"no readable {MANIFEST_NAME} in any of {len(dirs)} stripe "
                f"directories under {target}"
            )
        if "striping" not in manifest:
            raise StorageError(
                f"{target} is a plain chain directory, not a striped deployment"
            )
        if manifest["backend"] != backend.name:
            raise StorageError(
                f"chain was written with backend {manifest['backend']!r}, "
                f"opened with {backend.name!r}"
            )
        nodes_total = int(manifest["striping"]["nodes"])
        slots: list[Path | None] = [None] * nodes_total
        for path in dirs:
            index = cls._slot_index(path)
            if index is None or not 0 <= index < nodes_total:
                warnings.warn(
                    f"{path}: cannot determine its stripe slot; ignoring it",
                    StorageWarning,
                    stacklevel=2,
                )
                continue
            if slots[index] is not None and slots[index] != path:
                raise StorageError(
                    f"stripe slot {index} claimed by both {slots[index]} and {path}"
                )
            slots[index] = path
        # single-host layout: a wholly lost node-NN directory still has a
        # knowable home next to its surviving siblings, so the scrubber
        # can rebuild it there
        parents = {
            path.parent
            for index, path in enumerate(slots)
            if path is not None and path.name == NODE_DIR_PATTERN.format(index)
        }
        if len(parents) == 1:
            (parent,) = parents
            for index, path in enumerate(slots):
                if path is None:
                    slots[index] = parent / NODE_DIR_PATTERN.format(index)
        store = cls(
            slots,
            backend,
            int(manifest["bits"]),
            manifest=manifest,
            fsync=fsync,
            segment_bytes=segment_bytes,
        )
        try:
            store._recover()
        except Exception:
            store.close()
            raise
        return store

    @staticmethod
    def _slot_index(path: Path) -> int | None:
        """A node's slot, from NODE.json or (fallback) its dir name."""
        node_path = path / NODE_NAME
        try:
            info = json.loads(node_path.read_text())
            return int(info["node_index"])
        except (OSError, ValueError, TypeError, KeyError):
            return node_dir_index(path)

    @property
    def meta(self) -> dict:
        return self.manifest.get("meta", {})

    @property
    def data_dirs(self) -> list[Path | None]:
        """Every known node directory path (``None`` = slot unlocatable)."""
        return list(self._slots)

    def _read_hook(self, path: Path) -> None:
        if self.read_hook is not None:
            self.read_hook(path)

    def _warn(self, message: str) -> None:
        warnings.warn(message, StorageWarning, stacklevel=4)

    # -- recovery ----------------------------------------------------------
    def _recover(self) -> None:
        """Replay every reachable node, reconstruct the chain, repair.

        The chain's length is the longest prefix of heights that can be
        reconstructed from >= k agreeing stripes; records past it (a
        crash's torn append group) are truncated with a warning, and
        every damaged-but-recoverable stripe below it is read-repaired
        immediately.
        """
        messages: list[str] = []
        scans: list[list[_ScanRecord] | None] = [None] * self.code.nodes
        for index, path in enumerate(self._slots):
            if path is None:
                messages.append(f"stripe slot {index} has no surviving directory")
                continue
            try:
                node = _NodeLog(
                    path,
                    index,
                    fsync=self.fsync,
                    segment_bytes=self.segment_bytes,
                    read_hook=self._read_hook,
                )
            except StorageError:
                raise  # live-writer lock conflicts must not be masked
            except OSError as exc:
                messages.append(f"node {index} unreachable ({exc}); leaving offline")
                continue
            try:
                scans[index] = node.scan(messages.append)
            except OSError as exc:
                node.close()
                messages.append(f"node {index} unreadable ({exc}); leaving offline")
                continue
            self._nodes[index] = node

        online = sum(1 for node in self._nodes if node is not None)
        if online < self.code.k:
            # below quorum nothing can be reconstructed — refuse before
            # touching the survivors, whose stripes a rejoined node may
            # still need
            raise StorageError(
                f"only {online} of {self.code.nodes} stripe node(s) "
                f"reachable; k={self.code.k} are needed to reconstruct "
                "any block (restore more node directories and reopen)"
            )

        # assemble the longest reconstructable prefix
        height = 0
        damaged: list[tuple[int, int]] = []  # (node_index, height) to repair
        max_seen = max(
            (len(scan) for scan in scans if scan is not None), default=0
        )
        while height < max_seen:
            stripes: list[bytes | None] = [None] * self.code.nodes
            meta_votes: dict[tuple[int, int], int] = {}
            for index, scan in enumerate(scans):
                if scan is None or height >= len(scan):
                    continue
                record = scan[height]
                if record.stripe is None:
                    continue
                stripes[index] = record.stripe
                key = (record.entry.payload_len, record.entry.payload_crc)
                meta_votes[key] = meta_votes.get(key, 0) + 1
            payload = self._reconstruct(stripes, meta_votes)
            if payload is None:
                break
            payload_len, payload_crc = payload[1], payload[2]
            try:
                block = decode_block(self.backend, payload[0], self.bits)
            except ReproError as exc:
                messages.append(
                    f"block {height} does not decode ({exc}); chain resumes "
                    f"at height {height}"
                )
                break
            self._blocks.append(block)
            self._payload_meta.append((payload_len, payload_crc))
            expected = self.code.encode(payload[0].ljust(payload_len, b"\x00"))
            for index in range(self.code.nodes):
                scan = scans[index]
                has_valid = (
                    scan is not None
                    and height < len(scan)
                    and scan[height].stripe == expected[index]
                )
                if not has_valid and self._nodes[index] is not None:
                    damaged.append((index, height))
            height += 1

        chain_len = len(self._blocks)
        for index, node in enumerate(self._nodes):
            if node is None:
                continue
            dropped = node.truncate_to(chain_len)
            if dropped:
                messages.append(
                    f"node {index}: {dropped} record(s) past height {chain_len} "
                    "truncated (torn append group)"
                )
            node.drop_orphan_bytes(messages.append)
            node.open_for_append()

        repaired = self._repair_records(damaged)
        if repaired:
            messages.append(
                f"read-repair reconstructed {repaired} stripe record(s) "
                "from the survivors"
            )
        offline = [i for i, node in enumerate(self._nodes) if node is None]
        if offline:
            messages.append(
                f"{len(offline)} of {self.code.nodes} stripe node(s) offline "
                f"{offline}; serving degraded (tolerates "
                f"{self.code.m - len(offline)} more loss(es)), scrub rebuilds them"
            )
        for message in messages:
            self._warn(message)

    def _reconstruct(
        self,
        stripes: list[bytes | None],
        meta_votes: dict[tuple[int, int], int],
    ) -> tuple[bytes, int, int] | None:
        """Try to rebuild one height's payload from its valid stripes."""
        for key in sorted(meta_votes, key=meta_votes.get, reverse=True):
            payload_len, payload_crc = key
            candidate = list(stripes)
            # drop stripes whose recorded geometry disagrees with this vote
            for index, stripe in enumerate(candidate):
                if stripe is not None and len(stripe) != self.code.stripe_length(
                    payload_len, index
                ):
                    candidate[index] = None
            try:
                payload = self.code.decode(candidate, payload_len)
            except StorageError:
                continue
            if zlib.crc32(payload) == payload_crc:
                return payload, payload_len, payload_crc
        return None

    def _repair_records(self, damaged: list[tuple[int, int]]) -> int:
        """Rewrite (or re-append) reconstructed stripes on live nodes."""
        repaired = 0
        by_node: dict[int, list[int]] = {}
        for index, height in damaged:
            by_node.setdefault(index, []).append(height)
        for index, heights in by_node.items():
            node = self._nodes[index]
            if node is None:
                continue
            for height in sorted(heights):
                stripe = self._stripe_for(height, index)
                meta = self._payload_meta[height]
                try:
                    if height < len(node.entries):
                        node.rewrite(height, stripe)
                    elif height == len(node.entries):
                        node.append(height, stripe, meta[0], meta[1])
                    else:
                        continue  # an earlier repair failed; skip dependents
                except OSError:
                    self._offline(index, "repair write failed")
                    break
                repaired += 1
        self._repaired_stripes += repaired
        self._degraded_found += len(damaged)
        return repaired

    def _stripe_for(self, height: int, index: int) -> bytes:
        payload = encode_block(self.backend, self._blocks[height])
        return self.code.encode(payload)[index]

    def _offline(self, index: int, reason: str) -> None:
        node = self._nodes[index]
        if node is None:
            return
        node.close()
        self._nodes[index] = None
        self._warn(
            f"stripe node {index} ({self._slots[index]}) taken offline: {reason}"
        )

    # -- BlockStore protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block(self, height: int) -> Block:
        return self._blocks[height]

    def append(self, block: Block) -> None:
        with self._lock:
            if self._closed:
                raise StorageError("striped block store is closed")
            payload = encode_block(self.backend, block)
            payload_crc = zlib.crc32(payload)
            stripes = self.code.encode(payload)
            height = len(self._blocks)
            # stripe records first (fsync'd), index entries second: a
            # crash between the two phases leaves an unindexed record
            # tail that recovery truncates as one torn append group
            online = []
            for index, node in enumerate(self._nodes):
                if node is None:
                    continue
                try:
                    node.append(height, stripes[index], len(payload), payload_crc)
                    online.append(index)
                except OSError as exc:
                    self._offline(index, f"append failed ({exc})")
            self._blocks.append(block)
            self._payload_meta.append((len(payload), payload_crc))
            if len(online) < self.code.k and not self._below_quorum_warned:
                self._below_quorum_warned = True
                self._warn(
                    f"only {len(online)} of {self.code.nodes} stripe nodes "
                    f"accepted the append (k={self.code.k}): the on-disk copy "
                    "is below reconstruction quorum until scrub rebuilds a node"
                )

    def sync(self) -> None:
        with self._lock:
            if self._closed:
                return
            for node in self._nodes:
                if node is not None:
                    try:
                        node.sync()
                    except OSError:
                        pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for node in self._nodes:
                if node is not None:
                    try:
                        node.sync()
                    except OSError:
                        pass
                    node.close()

    def __enter__(self) -> "StripedBlockStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- health / scrub ----------------------------------------------------
    def health(self) -> dict[str, int]:
        """Live health counters, JSON/wire-ready (all plain ints).

        ``nodes_online`` probes each directory with a couple of stat
        calls, so a stripe directory deleted under a running store shows
        up here immediately — before any scrub pass runs.
        """
        with self._lock:
            online = 0
            for index, node in enumerate(self._nodes):
                if node is not None and self._node_present(index):
                    online += 1
            return {
                "k": self.code.k,
                "m": self.code.m,
                "nodes": self.code.nodes,
                "nodes_online": online,
                "nodes_offline": self.code.nodes - online,
                "blocks": len(self._blocks),
                "degraded_stripes_found": self._degraded_found,
                "repaired_stripes": self._repaired_stripes,
                "rebuilt_nodes": self._rebuilt_nodes,
                "scrub_cycles": self._scrub_cycles,
                "scrub_position": self._scrub_position,
                "scrubbed_stripes": self._scrub_checked,
            }

    def _node_present(self, index: int) -> bool:
        path = self._slots[index]
        return path is not None and (path / MANIFEST_NAME).exists()

    def scrub_step(self, batch: int = 64) -> ScrubReport:
        """One incremental scrub slice: detect, verify, repair, advance.

        Checks every node's liveness (a directory deleted out from
        under the store is noticed here), rebuilds offline nodes whose
        paths are known, then verifies ``batch`` heights' stripes
        against the recomputed encoding — CRC *and* parity consistency
        — repairing any deviation in place.
        """
        with self._lock:
            if self._closed:
                raise StorageError("striped block store is closed")
            report = ScrubReport()
            # 1. liveness: a node whose directory vanished is offline
            for index, node in enumerate(self._nodes):
                if node is not None and not self._node_present(index):
                    self._offline(index, "stripe directory disappeared")
            # 2. resurrection: rebuild offline nodes with known paths
            for index in range(self.code.nodes):
                if self._nodes[index] is None and self._slots[index] is not None:
                    if self._rebuild_node(index):
                        report.rebuilt_nodes += 1
            # 3. verification sweep over the next batch of heights
            chain_len = len(self._blocks)
            if chain_len:
                start = self._scrub_position % chain_len
                damaged: list[tuple[int, int]] = []
                for step in range(min(batch, chain_len)):
                    height = (start + step) % chain_len
                    expected = None
                    for index, node in enumerate(self._nodes):
                        if node is None:
                            continue
                        if expected is None:
                            payload = encode_block(
                                self.backend, self._blocks[height]
                            )
                            expected = self.code.encode(payload)
                        report.checked += 1
                        self._scrub_checked += 1
                        if node.read_record(height) != expected[index]:
                            damaged.append((index, height))
                    if (start + step + 1) >= chain_len:
                        report.wrapped = True
                self._scrub_position = (start + min(batch, chain_len)) % chain_len
                if self._scrub_position == 0 and chain_len:
                    report.wrapped = True
                if report.wrapped:
                    self._scrub_cycles += 1
                repaired = self._repair_records(damaged)
                report.repaired += repaired
                if repaired:
                    self._warn(
                        f"scrub repaired {repaired} damaged stripe record(s)"
                    )
            else:
                report.wrapped = True
                self._scrub_cycles += 1
            report.offline_nodes = sum(
                1 for node in self._nodes if node is None
            )
            return report

    def scrub(self, batch: int = 256) -> ScrubReport:
        """A full scrub cycle: every height verified once."""
        total = ScrubReport()
        while True:
            step = self.scrub_step(batch)
            total.merge(step)
            if step.wrapped:
                return total

    def _rebuild_node(self, index: int) -> bool:
        """Recreate one node directory wholesale from the in-memory chain."""
        path = self._slots[index]
        assert path is not None
        manifest_text = json.dumps(self.manifest, indent=2, sort_keys=True) + "\n"
        try:
            if path.exists():
                # stale remains of a half-dead node: clear them first
                for child in path.iterdir():
                    child.unlink()
            node = _NodeLog.create(
                path,
                index,
                self.code.nodes,
                manifest_text,
                fsync=self.fsync,
                segment_bytes=self.segment_bytes,
                read_hook=self._read_hook,
            )
            node.open_for_append()
            for height in range(len(self._blocks)):
                payload_len, payload_crc = self._payload_meta[height]
                node.append(
                    height, self._stripe_for(height, index), payload_len, payload_crc
                )
        except OSError as exc:
            self._warn(f"rebuild of stripe node {index} failed ({exc})")
            return False
        self._nodes[index] = node
        self._rebuilt_nodes += 1
        self._repaired_stripes += len(self._blocks)
        self._warn(
            f"stripe node {index} rebuilt at {path} "
            f"({len(self._blocks)} record(s))"
        )
        return True
