"""Durable chain storage (pluggable BlockStore backends).

The chain layer validates; a :class:`BlockStore` persists.
:class:`MemoryBlockStore` keeps the pre-storage behaviour (and is the
default), :class:`FileBlockStore` is an fsync'd append-only segment log
with crash recovery, :class:`StripedBlockStore` erasure-codes that log
across ``k + m`` directories (:class:`ShiftXORCode` parity, read-repair,
scrubbing, quorum reopen — ``python -m repro.storage scrub`` maintains a
deployment from the command line), and :mod:`repro.storage.bootstrap`
ties a store to the trusted setup that produced it so whole deployments
reopen across processes.  See ``docs/ARCHITECTURE.md`` ("Persistence"
and "Durability & failover") for the design.
"""

from repro.storage.bootstrap import (
    ChainSetup,
    StorageTarget,
    build_parties,
    create_chain_setup,
    open_chain_setup,
    open_deployment,
)
from repro.storage.ec import ShiftXORCode
from repro.storage.store import (
    CODEC_NAME,
    DEFAULT_SEGMENT_BYTES,
    FORMAT_VERSION,
    BlockStore,
    FileBlockStore,
    MemoryBlockStore,
    StorageWarning,
    load_manifest,
)
from repro.storage.striped import (
    ScrubReport,
    StripedBlockStore,
    discover_stripe_dirs,
)

__all__ = [
    "BlockStore",
    "CODEC_NAME",
    "ChainSetup",
    "DEFAULT_SEGMENT_BYTES",
    "FORMAT_VERSION",
    "FileBlockStore",
    "MemoryBlockStore",
    "ScrubReport",
    "ShiftXORCode",
    "StorageTarget",
    "StorageWarning",
    "StripedBlockStore",
    "build_parties",
    "create_chain_setup",
    "discover_stripe_dirs",
    "load_manifest",
    "open_chain_setup",
    "open_deployment",
]
