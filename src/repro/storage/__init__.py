"""Durable chain storage (pluggable BlockStore backends).

The chain layer validates; a :class:`BlockStore` persists.
:class:`MemoryBlockStore` keeps the pre-storage behaviour (and is the
default), :class:`FileBlockStore` is an fsync'd append-only segment log
with crash recovery, and :mod:`repro.storage.bootstrap` ties a store to
the trusted setup that produced it so whole deployments reopen across
processes.  See ``docs/ARCHITECTURE.md`` ("Persistence") for the design.
"""

from repro.storage.bootstrap import (
    ChainSetup,
    build_parties,
    create_chain_setup,
    open_chain_setup,
    open_deployment,
)
from repro.storage.store import (
    CODEC_NAME,
    DEFAULT_SEGMENT_BYTES,
    FORMAT_VERSION,
    BlockStore,
    FileBlockStore,
    MemoryBlockStore,
    StorageWarning,
    load_manifest,
)

__all__ = [
    "BlockStore",
    "CODEC_NAME",
    "ChainSetup",
    "DEFAULT_SEGMENT_BYTES",
    "FORMAT_VERSION",
    "FileBlockStore",
    "MemoryBlockStore",
    "StorageWarning",
    "build_parties",
    "create_chain_setup",
    "load_manifest",
    "open_chain_setup",
    "open_deployment",
]
