"""Create/reopen a durable chain together with its trusted setup.

A persisted chain is useless without the deployment parameters that
produced it: the accumulator digests on disk were computed against a
specific public key (derived from the setup seed), attribute encoding
depends on the accumulator's domain, and header re-validation needs the
consensus difficulty.  ``create_chain_setup`` therefore records the
whole deployment — accumulator name, backend name, setup seed,
``ProtocolParams`` — in the store manifest, and ``open_chain_setup``
reconstructs byte-compatible parties from it in a fresh process.

The setup seed drives ``KeyGen``'s RNG, so the reopened oracle serves
the *same* key powers; with no explicit seed a random one is drawn and
persisted.  (In the paper's deployment the public parameters simply
exist; the seed is this reproduction's stand-in for "the same trusted
setup, available after a restart".)

Higher layers wrap these helpers: ``VChainNetwork.create(data_dir=...)``
/ ``VChainNetwork.open``, ``ServiceProvider.open``,
``ServiceEndpoint.open`` and the ``python -m repro.api.server`` CLI.
"""

from __future__ import annotations

import os
import random
import secrets
from dataclasses import asdict, dataclass
from typing import Sequence, Union

from repro.accumulators import ElementEncoder, make_accumulator
from repro.accumulators.base import MultisetAccumulator
from repro.chain.chain import Blockchain
from repro.chain.miner import ProtocolParams
from repro.crypto import get_backend
from repro.crypto.backend import PairingBackend
from repro.errors import StorageError
from repro.storage.store import (
    DEFAULT_SEGMENT_BYTES,
    BlockStore,
    FileBlockStore,
    MemoryBlockStore,
    load_manifest,
)
from repro.storage.striped import StripedBlockStore, discover_stripe_dirs

#: a chain location: one directory, or several stripe directories
#: (a striped deployment's surviving quorum)
StorageTarget = Union[str, os.PathLike, Sequence[Union[str, os.PathLike]]]


def build_parties(
    acc_name: str,
    backend_name: str,
    seed: int | None,
    acc1_capacity: int,
) -> tuple[PairingBackend, MultisetAccumulator, ElementEncoder]:
    """Trusted setup: backend, accumulator and matching encoder.

    Deterministic in ``seed`` — the one fact that must hold for a chain
    written by one process to verify in another.
    """
    backend = get_backend(backend_name)
    rng = random.Random(seed)
    _secret, accumulator = make_accumulator(
        acc_name, backend, capacity=acc1_capacity, rng=rng
    )
    if acc_name == "acc1":
        encoder = ElementEncoder(backend.order - 1)
    else:
        encoder = ElementEncoder(2**32 - 1)
    return backend, accumulator, encoder


@dataclass
class ChainSetup:
    """A wired chain + parties, either in-memory or file-backed."""

    chain: Blockchain
    store: BlockStore
    accumulator: MultisetAccumulator
    encoder: ElementEncoder
    params: ProtocolParams
    acc_name: str
    backend_name: str
    seed: int | None
    acc1_capacity: int
    data_dir: str | None = None

    def close(self) -> None:
        self.store.close()


def create_chain_setup(
    data_dir: StorageTarget | None = None,
    acc_name: str = "acc2",
    backend_name: str = "simulated",
    params: ProtocolParams | None = None,
    seed: int | None = None,
    acc1_capacity: int = 4096,
    fsync: bool = True,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    stripes: int | None = None,
    parity: int = 2,
) -> ChainSetup:
    """Fresh trusted setup and empty chain.

    With ``data_dir`` the chain is file-backed and the full deployment
    is persisted in the manifest (an already-initialised directory is
    refused — reopen those with :func:`open_chain_setup`).  Without it,
    the store is in-memory and nothing survives the process.

    ``stripes`` switches the store to erasure-coded striping
    (:class:`~repro.storage.striped.StripedBlockStore`): ``data_dir``
    is then either a parent directory (``node-00`` .. ``node-NN`` are
    created inside it) or an explicit list of ``stripes + parity``
    directories, one per disk, and the chain survives up to ``parity``
    lost directories.  Passing a list of directories implies striping
    with ``stripes = len(dirs) - parity``.
    """
    params = params or ProtocolParams()
    if isinstance(data_dir, (list, tuple)) and stripes is None:
        stripes = len(data_dir) - parity
    if data_dir is not None and seed is None:
        # the seed *is* the reopenable trusted setup; a persisted chain
        # without one could never verify again
        seed = secrets.randbits(63)
    backend, accumulator, encoder = build_parties(
        acc_name, backend_name, seed, acc1_capacity
    )
    meta = {
        "acc_name": acc_name,
        "backend_name": backend_name,
        "seed": seed,
        "acc1_capacity": acc1_capacity,
        "params": asdict(params),
    }
    if data_dir is None:
        if stripes is not None:
            raise StorageError("striping needs storage directories (data_dir)")
        store: BlockStore = MemoryBlockStore()
    elif stripes is not None:
        store = StripedBlockStore.create(
            data_dir,
            backend,
            params.bits,
            stripes=stripes,
            parity=parity,
            meta=meta,
            fsync=fsync,
            segment_bytes=segment_bytes,
        )
    else:
        store = FileBlockStore.create(
            data_dir,
            backend,
            params.bits,
            meta=meta,
            fsync=fsync,
            segment_bytes=segment_bytes,
        )
    chain = Blockchain(difficulty_bits=params.difficulty_bits, store=store)
    return ChainSetup(
        chain=chain,
        store=store,
        accumulator=accumulator,
        encoder=encoder,
        params=params,
        acc_name=acc_name,
        backend_name=backend_name,
        seed=seed,
        acc1_capacity=acc1_capacity,
        data_dir=_describe_target(data_dir),
    )


def _describe_target(target: StorageTarget | None) -> str | None:
    """A display/path string for the chain location (first dir of many)."""
    if target is None:
        return None
    if isinstance(target, (list, tuple)):
        return str(target[0]) if target else None
    return str(target)


def _load_any_manifest(data_dir: StorageTarget) -> dict:
    """The deployment manifest, from a plain dir or any readable stripe
    node — striped deployments replicate it identically per node."""
    stripe_dirs = discover_stripe_dirs(data_dir)
    if stripe_dirs is None:
        if isinstance(data_dir, (list, tuple)):
            raise StorageError(
                f"none of the {len(data_dir)} given directories holds a "
                "stripe node manifest"
            )
        return load_manifest(data_dir)
    last_error: StorageError | None = None
    for path in stripe_dirs:
        try:
            return load_manifest(path)
        except StorageError as exc:
            last_error = exc
    raise StorageError(
        f"no readable manifest in any of {len(stripe_dirs)} stripe "
        f"directories under {_describe_target(data_dir)}: {last_error}"
    )


def _read_deployment(
    data_dir: StorageTarget,
) -> tuple[str, str, int, int, ProtocolParams]:
    """The recorded trusted-setup facts, straight from the manifest."""
    manifest = _load_any_manifest(data_dir)
    meta = manifest.get("meta", {})
    try:
        return (
            meta["acc_name"],
            meta["backend_name"],
            meta["seed"],
            meta["acc1_capacity"],
            ProtocolParams(**meta["params"]),
        )
    except (KeyError, TypeError) as exc:
        raise StorageError(
            f"{data_dir} has no usable deployment metadata ({exc}); "
            "was it created through create_chain_setup / VChainNetwork.create?"
        ) from exc


def open_deployment(
    data_dir: StorageTarget,
) -> tuple[MultisetAccumulator, ElementEncoder, ProtocolParams]:
    """The deployment of a chain directory, parties only — no block log.

    ``data_dir`` also accepts a striped deployment (parent directory,
    one node directory, or any surviving quorum of node directories) —
    every stripe node replicates the manifest, so any one of them
    answers.

    What a client process needs to talk to an SP serving this directory
    over a socket (``VChainClient.connect`` wants the accumulator,
    encoder and params).  **Trust caveat:** the manifest's setup seed
    regenerates the whole KeyGen, trapdoor included — it stands in for a
    trusted-setup ceremony, it is not public material.  A real
    deployment would publish the oracle/public key and keep ``s`` in the
    ceremony or an enclave; here, whoever can read the manifest (the SP
    included) could forge proofs, so treat cross-party runs as protocol
    exercises, not security demonstrations (see ``repro.crypto``'s
    simulated-backend caveat, which is the same honesty rule).
    """
    acc_name, backend_name, seed, acc1_capacity, params = _read_deployment(data_dir)
    _backend, accumulator, encoder = build_parties(
        acc_name, backend_name, seed, acc1_capacity
    )
    return accumulator, encoder, params


def open_chain_setup(
    data_dir: StorageTarget,
    fsync: bool = True,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
) -> ChainSetup:
    """Reopen a persisted chain with its recorded trusted setup.

    The store recovers the log (truncating a damaged tail with a
    warning) and the :class:`Blockchain` constructor re-validates every
    recovered header — linkage, timestamps, consensus nonce and the
    ``merkle_root`` binding over the decoded index tree — before the
    chain is handed to anyone.

    Striped deployments reopen from whatever survives: pass the parent
    directory, one node directory, or an explicit list of surviving
    node directories — any quorum able to reconstruct every block is
    enough (this is the standby-SP failover path).
    """
    acc_name, backend_name, seed, acc1_capacity, params = _read_deployment(data_dir)
    backend, accumulator, encoder = build_parties(
        acc_name, backend_name, seed, acc1_capacity
    )
    store: BlockStore
    if discover_stripe_dirs(data_dir) is not None:
        store = StripedBlockStore.open(
            data_dir, backend, fsync=fsync, segment_bytes=segment_bytes
        )
    else:
        store = FileBlockStore.open(
            data_dir, backend, fsync=fsync, segment_bytes=segment_bytes
        )
    try:
        chain = Blockchain(difficulty_bits=params.difficulty_bits, store=store)
    except Exception:
        store.close()  # re-validation failed: release the flock and handles
        raise
    return ChainSetup(
        chain=chain,
        store=store,
        accumulator=accumulator,
        encoder=encoder,
        params=params,
        acc_name=acc_name,
        backend_name=backend_name,
        seed=seed,
        acc1_capacity=acc1_capacity,
        data_dir=_describe_target(data_dir),
    )
