"""Shift-XOR erasure coding for striped block storage.

Systematic code in the spirit of Hanaki & Nozaki, "Erasure Correcting
Codes by Using Shift Operation and Exclusive OR" (arXiv:1804.04830):
a payload is split into ``k`` equal data stripes and extended with ``m``
parity stripes, where parity ``j`` is the XOR of the data stripes each
shifted by ``i*j`` **bytes** (stripe index ``i``).  Any ``m`` lost
stripes — data or parity, in any combination — are recoverable from the
survivors.

Why shift-XOR: treating each stripe as a polynomial over GF(2) (a
Python big integer), a byte shift is multiplication by ``x**(8*n)``, so
parity ``j`` is ``sum_i x**(8*i*j) * d_i`` — a Vandermonde system in
the monomials ``x**(8*i)``.  Every square submatrix is invertible, but
unlike Reed-Solomon there is no field arithmetic anywhere: encoding is
shifts and XORs of big integers (CPython does both in C), and the
decoder's hot paths (one or two lost data stripes, i.e. RAID-5/6
territory) reduce to shifts, XORs and an :math:`O(\\log)` geometric-
series inversion.  Three or more lost data stripes fall back to a
generic Vandermonde elimination over GF(2)[x] — still exact, just not
constant-factor-tuned, which is fine for an m >= 3 deployment's rare
triple-failure path.

The module is deliberately storage-agnostic: it maps ``bytes`` to
stripes and back, and :mod:`repro.storage.striped` owns files, CRCs and
repair policy.
"""

from __future__ import annotations

from repro.errors import StorageError


def _solve_binomial(y: int, s: int, nbits: int) -> int:
    """Solve ``d ^ (d << s) == y`` for ``d``, exact on the low ``nbits``.

    Over GF(2)[x] this divides by ``1 + x**s`` via the geometric series
    ``(1 + x**s)**-1 = sum_t x**(t*s)``: squaring the accumulated factor
    doubles the covered prefix, so the loop runs ``O(log(nbits/s))``
    big-integer operations.  Truncation is exact because the discarded
    series terms only touch bits at or above ``nbits``.
    """
    if s <= 0:
        raise StorageError("binomial shift must be positive")
    z = y
    shift = s
    while shift < nbits:
        z ^= z << shift
        shift <<= 1
    return z & ((1 << nbits) - 1)


def _poly_mul(p: frozenset[int], q: frozenset[int]) -> frozenset[int]:
    """Multiply two sparse GF(2)[x] polynomials (sets of exponents)."""
    acc: set[int] = set()
    for a in p:
        for b in q:
            acc.symmetric_difference_update((a + b,))
    return frozenset(acc)


def _int_mul_poly(value: int, p: frozenset[int]) -> int:
    """Multiply a big-integer polynomial by a sparse polynomial."""
    acc = 0
    for e in p:
        acc ^= value << e
    return acc


def _int_div_poly(value: int, p: frozenset[int]) -> int:
    """Exact long division of a big-integer polynomial by ``p``.

    Only the generic (>= 3 lost data stripes) solver lands here; the
    division must be exact, and a nonzero remainder means the caller's
    system was inconsistent — surviving stripes that do not agree.
    """
    divisor = 0
    for e in p:
        divisor |= 1 << e
    top = divisor.bit_length() - 1
    quotient = 0
    while value:
        lead = value.bit_length() - 1
        if lead < top:
            raise StorageError("inconsistent stripes: shift-XOR division leaves a remainder")
        quotient |= 1 << (lead - top)
        value ^= divisor << (lead - top)
    return quotient


class ShiftXORCode:
    """Systematic ``k``-data / ``m``-parity shift-XOR erasure code.

    ``encode`` produces ``k + m`` stripes; ``decode`` reconstructs the
    payload from any ``k`` (or more) surviving stripes, tolerating up
    to ``m`` erasures.  Stripe lengths are deterministic in
    ``(k, m, payload_len)`` — see :meth:`stripe_length` — which is what
    lets the storage layer validate a stripe file without its peers.
    """

    def __init__(self, k: int, m: int) -> None:
        if k < 1:
            raise StorageError("need at least one data stripe (k >= 1)")
        if m < 0:
            raise StorageError("parity stripe count cannot be negative")
        self.k = k
        self.m = m
        self.nodes = k + m

    # -- geometry ----------------------------------------------------------
    def data_length(self, payload_len: int) -> int:
        """Bytes per data stripe for a payload of ``payload_len``."""
        return max(1, -(-payload_len // self.k))

    def stripe_length(self, payload_len: int, index: int) -> int:
        """Exact byte length of stripe ``index`` for this payload size.

        Data stripes are all ``data_length`` bytes (the last one is
        zero-padded); parity ``j`` carries the largest shifted term
        ``d_{k-1} << 8*(k-1)*j`` and is ``(k-1)*j`` bytes longer.
        """
        if not 0 <= index < self.nodes:
            raise StorageError(f"stripe index {index} out of range for {self.nodes} nodes")
        length = self.data_length(payload_len)
        if index >= self.k:
            length += (self.k - 1) * (index - self.k)
        return length

    # -- encode ------------------------------------------------------------
    def encode(self, payload: bytes) -> list[bytes]:
        """Split ``payload`` into ``k`` data + ``m`` parity stripes."""
        length = self.data_length(len(payload))
        padded = payload.ljust(self.k * length, b"\x00")
        data = [padded[i * length : (i + 1) * length] for i in range(self.k)]
        if not self.m:
            return data
        words = [int.from_bytes(chunk, "little") for chunk in data]
        stripes = list(data)
        for j in range(self.m):
            parity = 0
            for i, word in enumerate(words):
                parity ^= word << (8 * i * j)
            stripes.append(parity.to_bytes(length + (self.k - 1) * j, "little"))
        return stripes

    # -- decode ------------------------------------------------------------
    def decode(self, stripes: list[bytes | None], payload_len: int) -> bytes:
        """Rebuild the payload from surviving stripes (``None`` = lost).

        Raises :class:`~repro.errors.StorageError` when fewer than ``k``
        stripes survive, or when the survivors are inconsistent.
        """
        if len(stripes) != self.nodes:
            raise StorageError(
                f"expected {self.nodes} stripe slots, got {len(stripes)}"
            )
        length = self.data_length(payload_len)
        erased = [i for i in range(self.k) if stripes[i] is None]
        if not erased:
            return b"".join(stripes[i] or b"" for i in range(self.k))[:payload_len]
        parities = [j for j in range(self.m) if stripes[self.k + j] is not None]
        if len(parities) < len(erased):
            raise StorageError(
                f"unrecoverable: {len(erased)} data stripe(s) lost with only "
                f"{len(parities)} surviving parity stripe(s)"
            )
        data = [
            int.from_bytes(stripes[i], "little") if stripes[i] is not None else None
            for i in range(self.k)
        ]
        solved = self._solve(data, stripes, erased, parities[: len(erased)], length)
        for index, value in solved.items():
            data[index] = value
        joined = b"".join(
            (data[i] or 0).to_bytes(length, "little") for i in range(self.k)
        )
        return joined[:payload_len]

    def _residual(
        self, data: list[int | None], stripes: list[bytes | None], j: int
    ) -> int:
        """Parity ``j`` minus every *surviving* data stripe's contribution."""
        stripe = stripes[self.k + j]
        assert stripe is not None
        residual = int.from_bytes(stripe, "little")
        for i, word in enumerate(data):
            if word is not None:
                residual ^= word << (8 * i * j)
        return residual

    def _solve(
        self,
        data: list[int | None],
        stripes: list[bytes | None],
        erased: list[int],
        parities: list[int],
        length: int,
    ) -> dict[int, int]:
        nbits = 8 * length
        mask = (1 << nbits) - 1
        if len(erased) == 1:
            (e,) = erased
            j = parities[0]
            value = (self._residual(data, stripes, j) >> (8 * e * j)) & mask
            return {e: value}
        if len(erased) == 2:
            e1, e2 = erased
            j1, j2 = parities
            r1 = self._residual(data, stripes, j1)
            r2 = self._residual(data, stripes, j2)
            # eliminate d_e1: align its coefficient across both equations
            a1, a2 = 8 * e1 * j1, 8 * e1 * j2
            b1, b2 = 8 * e2 * j1, 8 * e2 * j2
            folded = (r1 << (a2 - a1)) ^ r2
            low = b1 + a2 - a1  # the smaller of d_e2's two shifts
            d2 = _solve_binomial(folded >> low, b2 - low, nbits)
            d1 = ((r1 ^ (d2 << b1)) >> a1) & mask
            return {e1: d1, e2: d2}
        return self._solve_general(data, stripes, erased, parities, nbits)

    def _solve_general(
        self,
        data: list[int | None],
        stripes: list[bytes | None],
        erased: list[int],
        parities: list[int],
        nbits: int,
    ) -> dict[int, int]:
        """Fraction-free Gaussian elimination over GF(2)[x].

        Coefficients are sparse polynomials (sets of bit exponents);
        the right-hand sides are the big-integer residuals.  Row
        updates cross-multiply instead of dividing, so everything stays
        polynomial until one exact division per unknown at the end.
        """
        rows: list[tuple[list[frozenset[int]], int]] = []
        for j in parities:
            coeffs = [frozenset({8 * e * j}) for e in erased]
            rows.append((coeffs, self._residual(data, stripes, j)))
        n = len(rows)
        for col in range(n):
            pivot = next(r for r in range(col, n) if rows[r][0][col])
            rows[col], rows[pivot] = rows[pivot], rows[col]
            p_coeffs, p_rhs = rows[col]
            a = p_coeffs[col]
            for r in range(n):
                if r == col or not rows[r][0][col]:
                    continue
                coeffs, rhs = rows[r]
                b = coeffs[col]
                merged = [
                    _poly_mul(a, coeffs[c]) ^ _poly_mul(b, p_coeffs[c])
                    for c in range(n)
                ]
                rows[r] = (merged, _int_mul_poly(rhs, a) ^ _int_mul_poly(p_rhs, b))
        mask = (1 << nbits) - 1
        solved: dict[int, int] = {}
        for col, e in enumerate(erased):
            coeffs, rhs = rows[col]
            solved[e] = _int_div_poly(rhs, coeffs[col]) & mask
        return solved
