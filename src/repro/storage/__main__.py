"""Storage maintenance CLI: ``python -m repro.storage <command>``.

Commands operate on a striped deployment (a parent directory of
``node-*`` stripe directories, one node directory, or an explicit list
of surviving directories):

``scrub``
    Run full scrub cycles: verify every stripe record against the
    recomputed encoding, repair deviations in place, rebuild offline
    node directories.  Exits non-zero if nodes are still offline
    afterwards (so cron jobs notice).

``status``
    Print the deployment's health counters as JSON without modifying
    anything on disk.  Exits 1 if any node is offline, so monitoring
    can alert without parsing the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from repro.crypto import get_backend
from repro.errors import StorageError
from repro.storage.store import StorageWarning, load_manifest
from repro.storage.striped import StripedBlockStore, discover_stripe_dirs


def _open_store(dirs: list[str]) -> StripedBlockStore:
    target: list[str] | str = dirs if len(dirs) > 1 else dirs[0]
    resolved = discover_stripe_dirs(target)
    if not resolved:
        raise StorageError(
            f"{target} does not look like a striped deployment "
            "(no node-* stripe directories found)"
        )
    manifest = None
    for path in resolved:
        try:
            manifest = load_manifest(path)
            break
        except StorageError:
            continue
    if manifest is None:
        raise StorageError(f"no readable manifest under {target}")
    backend = get_backend(manifest["backend"])
    return StripedBlockStore.open(target, backend)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage",
        description="maintenance commands for striped chain storage",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scrub = sub.add_parser("scrub", help="verify and repair every stripe record")
    scrub.add_argument("dirs", nargs="+", help="deployment parent dir or node dirs")
    scrub.add_argument(
        "--batch", type=int, default=256, help="heights verified per scrub step"
    )
    scrub.add_argument(
        "--cycles", type=int, default=1, help="full verification passes to run"
    )

    status = sub.add_parser("status", help="print health counters as JSON")
    status.add_argument("dirs", nargs="+", help="deployment parent dir or node dirs")

    args = parser.parse_args(argv)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", StorageWarning)
            store = _open_store(args.dirs)
        for warning in caught:
            print(f"note: {warning.message}", file=sys.stderr)
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.command == "status":
            health = store.health()
            print(json.dumps(health, indent=2, sort_keys=True))
            return 1 if health["nodes_offline"] else 0
        total_repaired = 0
        offline = 0
        for _ in range(args.cycles):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", StorageWarning)
                report = store.scrub(batch=args.batch)
            for warning in caught:
                print(f"note: {warning.message}", file=sys.stderr)
            total_repaired += report.repaired
            offline = report.offline_nodes
            print(
                f"scrub cycle: checked {report.checked} stripe record(s), "
                f"repaired {report.repaired}, rebuilt {report.rebuilt_nodes} "
                f"node(s), {report.offline_nodes} node(s) still offline"
            )
        print(json.dumps(store.health(), indent=2, sort_keys=True))
        return 1 if offline else 0
    finally:
        store.close()


if __name__ == "__main__":
    raise SystemExit(main())
