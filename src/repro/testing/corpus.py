"""Deterministic recorded-session corpora for regression testing.

Each corpus scenario builds the same seeded demo network (mined chains
are byte-identical run to run), records one client session against a
live socket server, and normalizes the recording so the committed
``.vrec`` bytes are fully reproducible — ``tools/record_corpus.py
--check`` regenerates every scenario and compares byte for byte.

Scenarios:

* ``query`` — header sync, a repeated wide query (cache-warm second
  run) and a spread of narrow window queries
* ``batch`` — the same queries through ``execute_many`` with and
  without batch verification, plus a stats request
* ``subscription`` — register with ``since_height=0`` against the
  fully mined chain, poll the catch-up deliveries, flush, poll again
  (empty), close, then poll the dead id for its error frame
* ``forged`` — an honest query whose recorded VO gets one bit flipped;
  replaying it must yield exactly one mismatch, proving the byte-parity
  gate actually bites
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro import ProtocolParams, VChainNetwork
from repro.api import AsyncSocketServer, SocketServer, SocketTransport, VChainClient
from repro.api.builder import QueryBuilder
from repro.chain import DataObject
from repro.core.query import TimeWindowQuery
from repro.crypto.accel import dispatch
from repro.crypto.backend import PairingBackend
from repro.errors import SubscriptionError
from repro.testing.recorder import SessionRecorder, load_recording
from repro.testing.replay import ReplayReport, normalize_recording, replay_recording
from repro.wire import (
    DIR_REQUEST,
    QueryRequest,
    RecordedFrame,
    SessionRecording,
    WireError,
    decode_query_response,
    decode_request,
    encode_recording,
    encode_time_window_vo,
    peek_deadline,
)

_STATUS_OK = 0

CORPUS_SCENARIOS = ("query", "batch", "subscription", "forged")

DEMO_VOCAB = ["Sedan", "Van", "Benz", "BMW", "Audi", "Tesla", "Ford"]


def make_demo_objects(
    rng: random.Random,
    n: int,
    start_id: int,
    timestamp: int,
    dims: int = 2,
    bits: int = 8,
    vocab: list[str] | None = None,
) -> list[DataObject]:
    """Random objects for ad-hoc chains (shared with the test suite)."""
    vocab = vocab or DEMO_VOCAB
    space = 1 << bits
    return [
        DataObject(
            object_id=start_id + i,
            timestamp=timestamp,
            vector=tuple(rng.randrange(space) for _ in range(dims)),
            keywords=frozenset(rng.sample(vocab, 2)),
        )
        for i in range(n)
    ]


def corpus_network(meta: dict[str, str] | None = None) -> VChainNetwork:
    """The seeded demo network a corpus recording was captured against.

    ``meta`` is a recording's metadata map; the defaults match
    :func:`record_scenario`, so replaying a committed corpus rebuilds
    the exact chain it was recorded on.  Mining is fully deterministic
    (seeded setup, seeded objects, ``difficulty_bits=0``), which is
    what makes byte-level replay possible at all.
    """
    meta = dict(meta or {})
    seed = int(meta.get("seed", "33"))
    blocks = int(meta.get("blocks", "8"))
    net = VChainNetwork.create(
        backend_name=meta.get("backend", "simulated"),
        params=ProtocolParams(mode="both", bits=8, skip_size=2, difficulty_bits=0),
        seed=seed,
    )
    try:
        rng = random.Random(seed)
        for height in range(blocks):
            objects = make_demo_objects(rng, 3, height * 3, timestamp=height * 10)
            net.mine(objects, timestamp=height * 10)
    except Exception:
        net.close()
        raise
    return net


def _base_meta(scenario: str) -> dict[str, str]:
    return {
        "format": "corpus-v1",
        "scenario": scenario,
        "seed": "33",
        "blocks": "8",
        "backend": "simulated",
        "accel": "pure",
        "expect_mismatches": "1" if scenario == "forged" else "0",
    }


@contextmanager
def _pinned_accel(impl: str) -> Iterator[None]:
    """Pin the arithmetic provider for a record/replay session.

    The stats response names the live provider, so the serving side
    must run the impl the corpus was recorded under — crypto bytes are
    provider-independent, but the observability snapshot is honest
    about its environment.  The previous selection is restored on exit.
    """
    previous = dispatch.active_impl()
    dispatch.set_impl(impl)
    try:
        yield
    finally:
        dispatch.set_impl(previous)


def _window_query(builder: QueryBuilder) -> TimeWindowQuery:
    query = builder.build()
    assert isinstance(query, TimeWindowQuery)
    return query


def _corpus_queries(client: VChainClient) -> list[TimeWindowQuery]:
    wide = _window_query(
        client.query()
        .window(0, 200)
        .range(low=(0,), high=(255,))
        .all_of("Sedan")
        .any_of("Benz", "BMW")
    )
    narrow = [
        _window_query(
            client.query().window(i * 20, i * 20 + 30).any_of(DEMO_VOCAB[i % 5])
        )
        for i in range(3)
    ]
    return [wide, *narrow]


def _query_steps(client: VChainClient) -> None:
    client.sync_headers()
    queries = _corpus_queries(client)
    client.execute(queries[0])
    client.execute(queries[0])  # second run exercises the serving caches
    for query in queries[1:]:
        client.execute(query)


def _batch_steps(client: VChainClient) -> None:
    client.sync_headers()
    queries = _corpus_queries(client)
    client.execute_many(queries, batch=True)
    client.execute_many(queries, batch=False)
    client.server_stats()


def _subscription_steps(client: VChainClient) -> None:
    client.sync_headers()
    stream = client.subscribe().any_of("Benz", "BMW").open(since_height=0)
    stream.poll()  # catch-up deliveries for the whole mined chain
    stream.flush()
    stream.poll()  # drained: nothing due
    query_id = stream.query_id
    stream.close()
    try:
        client.transport.poll(query_id)  # dead id: a typed error frame
    except SubscriptionError:
        pass


def _forged_steps(client: VChainClient) -> None:
    client.sync_headers()
    client.execute(_corpus_queries(client)[0])


_SCENARIO_STEPS = {
    "query": _query_steps,
    "batch": _batch_steps,
    "subscription": _subscription_steps,
    "forged": _forged_steps,
}


def _forge_query_response(
    backend: PairingBackend, recording: SessionRecording
) -> SessionRecording:
    """Flip one bit inside the first query response's VO bytes."""
    frames = list(recording.frames)
    last_request: dict[int, bytes] = {}
    for i, frame in enumerate(frames):
        if frame.direction == DIR_REQUEST:
            last_request[frame.channel] = frame.payload
            continue
        if not frame.payload or frame.payload[0] != _STATUS_OK:
            continue
        try:
            _deadline_ms, inner = peek_deadline(last_request.get(frame.channel, b""))
            request = decode_request(inner)
        except WireError:
            continue
        if not isinstance(request, QueryRequest):
            continue
        _results, vo, _stats = decode_query_response(backend, frame.payload[1:])
        vo_bytes = encode_time_window_vo(backend, vo)
        start = frame.payload.find(vo_bytes)
        if start < 0 or not vo_bytes:
            raise ValueError("could not locate the VO bytes to forge")
        tampered = bytearray(frame.payload)
        tampered[start + len(vo_bytes) // 2] ^= 0x01
        frames[i] = RecordedFrame(
            seq=frame.seq,
            channel=frame.channel,
            direction=frame.direction,
            timestamp_us=frame.timestamp_us,
            payload=bytes(tampered),
        )
        return SessionRecording(
            label=recording.label, meta=dict(recording.meta), frames=tuple(frames)
        )
    raise ValueError("no query response found to forge")


def record_scenario(scenario: str) -> SessionRecording:
    """Record one corpus scenario from scratch; fully deterministic."""
    try:
        steps = _SCENARIO_STEPS[scenario]
    except KeyError:
        raise ValueError(f"unknown corpus scenario {scenario!r}") from None
    meta = _base_meta(scenario)
    with _pinned_accel(meta["accel"]):
        net = corpus_network(meta)
        recorder = SessionRecorder(label=f"corpus-{scenario}", meta=meta)
        backend = net.accumulator.backend
        try:
            server = AsyncSocketServer(net.endpoint).start()
            try:
                transport = SocketTransport(
                    server.address, backend, tap=recorder.tap()
                )
                client = VChainClient(
                    transport, net.accumulator, net.encoder, net.params
                )
                try:
                    steps(client)
                finally:
                    client.close()
            finally:
                server.stop()
        finally:
            net.close()
    recording = normalize_recording(backend, recorder.recording())
    if scenario == "forged":
        recording = _forge_query_response(backend, recording)
    return recording


def record_corpus(out_dir: str | os.PathLike[str]) -> dict[str, bytes]:
    """Record every scenario into ``out_dir``; returns the file bytes."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, bytes] = {}
    for scenario in CORPUS_SCENARIOS:
        data = encode_recording(record_scenario(scenario))
        (out / f"{scenario}.vrec").write_bytes(data)
        written[scenario] = data
    return written


class CorpusReplayer:
    """Replays ``.vrec`` corpora against freshly served demo networks."""

    def replay(
        self, path: str | os.PathLike[str], server: str = "async"
    ) -> ReplayReport:
        """Serve the recording's network and re-drive the session.

        ``server`` picks the implementation behind the socket —
        ``"async"`` or ``"threaded"`` — which a byte-deterministic
        protocol must not be able to tell apart.
        """
        recording = load_recording(path)
        with _pinned_accel(recording.meta.get("accel", "pure")):
            net = corpus_network(recording.meta)
            try:
                live: AsyncSocketServer | SocketServer
                if server == "async":
                    live = AsyncSocketServer(net.endpoint).start()
                elif server == "threaded":
                    live = SocketServer(net.endpoint).start()
                else:
                    raise ValueError(f"unknown server kind {server!r}")
                try:
                    return replay_recording(
                        recording, live.address, net.accumulator.backend
                    )
                finally:
                    live.stop()
            finally:
                net.close()
