"""Deterministic record/replay and fault injection for the serving tier.

Three pieces, composable but independent:

* **Recording** — :class:`SessionRecorder` plugs into the ``tap=`` hook
  of :class:`~repro.api.SocketTransport` or
  :class:`~repro.api.AsyncSocketServer` and captures every frame that
  crosses the wire into a versioned, CRC-checked ``.vrec`` file
  (:mod:`repro.wire.record_codec`).
* **Replay** — :func:`replay_recording` re-drives a recording against a
  live server and asserts byte parity response by response, after
  :func:`normalize_response` zeroes the few legitimately varying fields
  (timings, stats snapshots).  :func:`record_corpus` /
  :class:`CorpusReplayer` build and replay the committed regression
  corpus under ``tests/corpus/``; ``python -m repro.testing replay``
  is the command-line form.
* **Fault injection** — :class:`FaultProxy` forwards frames between a
  client and a server while a :class:`Fault`/:class:`FaultPlan`
  schedule drops, delays, truncates, corrupts or disconnects specific
  frames, driving every retry/deadline/hygiene branch deterministically.
  :class:`DiskFaultStore` does the same below the chain: scripted lost
  stripe directories, bit-rot, torn writes and EIO reads against a
  :class:`~repro.storage.StripedBlockStore`, so every storage
  degradation path is test-drivable too.  :class:`ManualClock`
  substitutes for ``time.monotonic`` wherever a component takes a
  ``clock=`` callable.
"""

from repro.testing.clock import ManualClock
from repro.testing.disk import DiskFaultStore
from repro.testing.corpus import (
    CORPUS_SCENARIOS,
    CorpusReplayer,
    corpus_network,
    make_demo_objects,
    record_corpus,
    record_scenario,
)
from repro.testing.faults import TO_CLIENT, TO_SERVER, Fault, FaultPlan, FaultProxy
from repro.testing.recorder import SessionRecorder, load_recording, save_recording
from repro.testing.replay import (
    ReplayMismatch,
    ReplayReport,
    normalize_recording,
    normalize_response,
    replay_recording,
)

__all__ = [
    "CORPUS_SCENARIOS",
    "CorpusReplayer",
    "DiskFaultStore",
    "Fault",
    "FaultPlan",
    "FaultProxy",
    "ManualClock",
    "ReplayMismatch",
    "ReplayReport",
    "SessionRecorder",
    "TO_CLIENT",
    "TO_SERVER",
    "corpus_network",
    "load_recording",
    "make_demo_objects",
    "normalize_recording",
    "normalize_response",
    "record_corpus",
    "record_scenario",
    "replay_recording",
    "save_recording",
]
