"""Session recorder: frame taps that accumulate a ``.vrec`` recording.

A :class:`SessionRecorder` hands out :data:`~repro.api.transport.FrameTap`
callables (one per tapped transport or server) and collects everything
they observe — requests, responses, busy/deadline error frames,
subscription deliveries — into one ordered
:class:`~repro.wire.SessionRecording`.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Callable

from repro.api.transport import FrameTap
from repro.wire import (
    DIR_REQUEST,
    DIR_RESPONSE,
    RecordedFrame,
    SessionRecording,
    decode_recording,
    encode_recording,
)

_DIRECTIONS = {"request": DIR_REQUEST, "response": DIR_RESPONSE}


class SessionRecorder:
    """Collects every frame its taps observe into one recording.

    One recorder can tap several transports at once (say a client
    transport and the server behind it): each :meth:`tap` call returns
    an independent tap whose local channel numbers are mapped into a
    recorder-global channel space, so frames from different tapped
    components never collide.

    Timestamps default to a deterministic logical counter (0, 1, 2, …
    in observation order) so recording the same traffic twice yields
    byte-identical files; pass ``clock`` (e.g. ``time.monotonic``) for
    real timestamps, recorded in microseconds.
    """

    def __init__(
        self,
        label: str = "",
        meta: dict[str, str] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.label = label
        self.meta = dict(meta or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._frames: list[RecordedFrame] = []
        self._channels: dict[tuple[int, int], int] = {}
        self._next_source = 0
        self._seq = 0

    def tap(self) -> FrameTap:
        """A fresh tap to pass as a ``tap=`` argument; cheap, reusable."""
        with self._lock:
            source = self._next_source
            self._next_source += 1

        def _observe(channel: int, event: str, payload: bytes) -> None:
            self._record(source, channel, event, payload)

        return _observe

    def _record(self, source: int, channel: int, event: str, payload: bytes) -> None:
        try:
            direction = _DIRECTIONS[event]
        except KeyError:
            raise ValueError(f"unknown tap event {event!r}") from None
        with self._lock:
            key = (source, channel)
            if key not in self._channels:
                self._channels[key] = len(self._channels)
            timestamp_us = (
                self._seq if self._clock is None else int(self._clock() * 1_000_000)
            )
            self._frames.append(
                RecordedFrame(
                    seq=self._seq,
                    channel=self._channels[key],
                    direction=direction,
                    timestamp_us=timestamp_us,
                    payload=payload,
                )
            )
            self._seq += 1

    def recording(self) -> SessionRecording:
        """A coherent snapshot of everything recorded so far."""
        with self._lock:
            return SessionRecording(
                label=self.label, meta=dict(self.meta), frames=tuple(self._frames)
            )

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the current snapshot as a ``.vrec`` file."""
        save_recording(self.recording(), path)


def save_recording(recording: SessionRecording, path: str | os.PathLike[str]) -> None:
    """Serialize a recording to ``path`` in the ``.vrec`` format."""
    Path(path).write_bytes(encode_recording(recording))


def load_recording(path: str | os.PathLike[str]) -> SessionRecording:
    """Read and validate a ``.vrec`` file."""
    return decode_recording(Path(path).read_bytes())
