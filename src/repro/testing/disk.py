"""Deterministic disk-fault injection for striped block storage.

:class:`DiskFaultStore` drives every degradation path of a
:class:`~repro.storage.striped.StripedBlockStore` on purpose, the way
:class:`~repro.testing.faults.FaultProxy` drives the transport's: a test
names the exact node, height and failure mode, so "lose two disks under
live traffic" is a scripted scenario instead of a hope.  Four failure
modes, matching what real media does:

* :meth:`lose_node` — the whole stripe directory vanishes (dead disk,
  ``rm -rf``, unmounted volume);
* :meth:`bitrot` — one byte of one stored stripe record flips silently
  (latent sector corruption; the CRC catches it on the next read);
* :meth:`short_write` — the tail of a node's log and/or index is cut
  mid-record (a torn write: power loss between write and fsync);
* :meth:`eio_on_read` — reads of a node's files start failing with
  ``EIO`` (a dying-but-present disk), via the store's ``read_hook``.

Faults are injected directly against the on-disk files (or the read
path), never through the store's own write API — exactly as a real
fault would arrive.  The store under test can be live or closed;
``eio_on_read`` needs a live store, the others work on bare
directories too.
"""

from __future__ import annotations

import errno
import os
import shutil
import threading
from pathlib import Path

from repro.storage.striped import (
    _SREC_HEAD,
    STRIPE_INDEX_NAME,
    SEGMENT_PATTERN,
    StripedBlockStore,
)


class DiskFaultStore:
    """Scripted disk faults against one striped deployment.

    Wraps a live :class:`StripedBlockStore` (installing itself as its
    ``read_hook``) or, with ``store=None``, just a list of node
    directories for faults that act on closed files.
    """

    def __init__(
        self,
        store: StripedBlockStore | None = None,
        node_dirs: list[Path] | None = None,
    ) -> None:
        if store is None and node_dirs is None:
            raise ValueError("need a store or explicit node directories")
        self.store = store
        if node_dirs is not None:
            self._dirs: list[Path | None] = [Path(d) for d in node_dirs]
        else:
            assert store is not None
            self._dirs = store.data_dirs
        self._lock = threading.Lock()
        #: node index -> remaining EIO reads (-1 = unlimited)
        self._eio: dict[int, int] = {}
        #: every fault actually applied: (kind, node_index, detail)
        self.injected: list[tuple[str, int, str]] = []
        if store is not None:
            store.read_hook = self._read_hook

    def _dir(self, index: int) -> Path:
        path = self._dirs[index]
        if path is None:
            raise ValueError(f"node {index} has no known directory")
        return path

    def _log(self, kind: str, index: int, detail: str) -> None:
        with self._lock:
            self.injected.append((kind, index, detail))

    # -- fault modes -------------------------------------------------------
    def lose_node(self, index: int) -> None:
        """Delete node ``index``'s whole stripe directory."""
        path = self._dir(index)
        shutil.rmtree(path, ignore_errors=True)
        self._log("lose_node", index, str(path))

    def bitrot(
        self, index: int, height: int, *, offset: int = 0, xor_mask: int = 0xFF
    ) -> None:
        """Flip one byte inside the stored stripe for ``height`` on node
        ``index`` — silent corruption the stripe CRC catches on read.

        ``offset`` indexes into the stripe payload (not the record
        header), so the damage is always in CRC-protected territory.
        """
        entry = self._find_entry(index, height)
        seg_path = self._dir(index) / SEGMENT_PATTERN.format(entry[0])
        record_off, stripe_len = entry[1], entry[2]
        target = record_off + _SREC_HEAD.size + (offset % max(1, stripe_len))
        with open(seg_path, "r+b") as handle:
            handle.seek(target)
            byte = handle.read(1)
            if not byte:
                raise ValueError(
                    f"node {index} segment {seg_path.name} has no byte at {target}"
                )
            handle.seek(target)
            handle.write(bytes([byte[0] ^ (xor_mask & 0xFF)]))
        self._log("bitrot", index, f"height={height} offset={offset}")

    def short_write(
        self, index: int, *, segment_bytes: int = 1, index_bytes: int = 0
    ) -> None:
        """Cut the tail of node ``index``'s newest segment (and
        optionally its index file) — a torn write at the worst moment.

        ``segment_bytes``/``index_bytes`` say how many trailing bytes to
        drop from each file; 0 leaves that file alone.
        """
        node_dir = self._dir(index)
        if segment_bytes:
            seg_path = self._latest_segment(node_dir)
            self._truncate_tail(seg_path, segment_bytes)
        if index_bytes:
            self._truncate_tail(node_dir / STRIPE_INDEX_NAME, index_bytes)
        self._log(
            "short_write", index, f"segment-{segment_bytes} index-{index_bytes}"
        )

    def eio_on_read(self, index: int, count: int | None = None) -> None:
        """Fail the next ``count`` file reads of node ``index`` with
        ``EIO`` (``None`` = every read until :meth:`heal`).

        Needs a live store — the failure is injected through its
        ``read_hook``, which the store consults before every index,
        segment or scrub read.
        """
        if self.store is None:
            raise ValueError("eio_on_read needs a live store (read_hook)")
        with self._lock:
            self._eio[index] = -1 if count is None else count

    def heal(self, index: int | None = None) -> None:
        """Stop injecting EIO for ``index`` (or for every node)."""
        with self._lock:
            if index is None:
                self._eio.clear()
            else:
                self._eio.pop(index, None)

    # -- plumbing ----------------------------------------------------------
    def _read_hook(self, path: Path) -> None:
        index = self._node_of(path)
        if index is None:
            return
        with self._lock:
            remaining = self._eio.get(index)
            if remaining is None or remaining == 0:
                return
            if remaining > 0:
                self._eio[index] = remaining - 1
            self.injected.append(("eio", index, path.name))
        raise OSError(errno.EIO, "injected I/O error", str(path))

    def _node_of(self, path: Path) -> int | None:
        for index, node_dir in enumerate(self._dirs):
            if node_dir is not None and node_dir == path.parent:
                return index
        return None

    def _latest_segment(self, node_dir: Path) -> Path:
        segments = sorted(node_dir.glob("seg-*.log"))
        if not segments:
            raise ValueError(f"{node_dir} has no segment files to tear")
        return segments[-1]

    @staticmethod
    def _truncate_tail(path: Path, drop: int) -> None:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(max(0, size - drop))

    def _find_entry(self, index: int, height: int) -> tuple[int, int, int]:
        """(segment_id, record_offset, stripe_len) for one stored record.

        Read from the node's on-disk index file, not the live store's
        memory — faults must target what is actually on the platter.
        """
        from repro.storage.striped import _SIDX_ENTRY

        raw = (self._dir(index) / STRIPE_INDEX_NAME).read_bytes()
        pos = height * _SIDX_ENTRY.size
        if pos + _SIDX_ENTRY.size > len(raw):
            raise ValueError(f"node {index} has no record at height {height}")
        entry = _SIDX_ENTRY.unpack_from(raw, pos)
        # (height, segment, offset, stripe_len, stripe_crc, plen, pcrc)
        return entry[1], entry[2], entry[3]
