"""Deterministic fault injection between a client and a server.

:class:`FaultProxy` is a frame-aware TCP proxy: it reassembles each
length-prefixed frame before forwarding, so a scripted fault always
hits one whole protocol unit — the Nth request or the Nth response —
rather than an arbitrary byte of some packet.  Which frame gets which
fault comes from a :class:`FaultPlan`, either written explicitly
(``{0: Fault("corrupt")}``) or generated from a seed, so every retry,
backoff, deadline and hygiene-counter branch in the serving stack can
be driven reproducibly, without wall-clock races.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass

from repro.api.transport import TransportError, _recv_frame, _send_frame

_KINDS = frozenset({"pass", "drop", "delay", "truncate", "corrupt", "disconnect"})

#: frames travelling client -> server
TO_SERVER = "to_server"

#: frames travelling server -> client
TO_CLIENT = "to_client"


@dataclass(frozen=True)
class Fault:
    """One scripted action applied to one forwarded frame.

    ``kind`` is one of:

    * ``"pass"`` — forward unchanged (the default for unlisted frames)
    * ``"drop"`` — swallow the frame; the link stays up
    * ``"delay"`` — forward after ``delay`` seconds
    * ``"truncate"`` — announce the full length but send only
      ``keep_bytes`` payload bytes, then cut the link (the receiver
      sees a connection closed mid-frame)
    * ``"corrupt"`` — XOR the payload byte at ``offset`` with
      ``xor_mask``, then forward.  The default flips the first byte —
      the request tag or response status — which every decoder rejects
      deterministically; corrupting arbitrary middle bytes can yield a
      different-but-valid frame.
    * ``"disconnect"`` — drop the frame and cut the link
    """

    kind: str
    delay: float = 0.0
    keep_bytes: int = 1
    xor_mask: int = 0xFF
    offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


_PASS = Fault("pass")


def _shutdown(sock: socket.socket) -> None:
    """Tear a socket down so that *blocked* peers notice immediately.

    A plain ``close()`` while a sibling thread sits in ``recv`` on the
    same fd keeps the kernel-side connection alive until that syscall
    returns — no FIN reaches the other end and everyone deadlocks.
    ``shutdown`` sends the FIN and wakes blocked readers first.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class FaultPlan:
    """Maps per-direction frame indices to faults, and logs injections.

    ``to_server[i]`` applies to the i-th client→server frame the proxy
    carries, ``to_client[i]`` to the i-th server→client frame; anything
    unlisted passes through.  Indices are global across every
    connection through the proxy, so a client that reconnects after a
    fault keeps consuming the same schedule — exactly what a retry test
    wants.  ``injected`` records every non-pass fault actually applied,
    so a test can assert how many attempts the client really made.
    """

    def __init__(
        self,
        to_server: dict[int, Fault] | None = None,
        to_client: dict[int, Fault] | None = None,
    ) -> None:
        self._plans: dict[str, dict[int, Fault]] = {
            TO_SERVER: dict(to_server or {}),
            TO_CLIENT: dict(to_client or {}),
        }
        self._counts = {TO_SERVER: 0, TO_CLIENT: 0}
        self._lock = threading.Lock()
        self.injected: list[tuple[str, int, str]] = []

    def next_fault(self, direction: str) -> Fault:
        """The fault for the next frame in ``direction`` (advances it)."""
        with self._lock:
            index = self._counts[direction]
            self._counts[direction] = index + 1
            fault = self._plans[direction].get(index, _PASS)
            if fault.kind != "pass":
                self.injected.append((direction, index, fault.kind))
            return fault

    def frames_seen(self, direction: str) -> int:
        """How many frames have crossed in ``direction`` so far."""
        with self._lock:
            return self._counts[direction]

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        drop: float = 0.0,
        corrupt: float = 0.0,
        disconnect: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.01,
        frames: int = 256,
    ) -> "FaultPlan":
        """A reproducible random schedule over the first ``frames``
        frames of each direction: the same seed and rates always build
        the same plan, so a chaos run that finds a bug is rerunnable.
        The rates are per-frame probabilities and must sum to ≤ 1.
        """
        if min(drop, corrupt, disconnect, delay) < 0:
            raise ValueError("fault rates must be non-negative")
        if drop + corrupt + disconnect + delay > 1:
            raise ValueError("fault rates must sum to at most 1")
        rng = random.Random(seed)
        plans: dict[str, dict[int, Fault]] = {TO_SERVER: {}, TO_CLIENT: {}}
        for direction in (TO_SERVER, TO_CLIENT):
            for index in range(frames):
                roll = rng.random()
                if roll < drop:
                    plans[direction][index] = Fault("drop")
                elif roll < drop + corrupt:
                    plans[direction][index] = Fault("corrupt")
                elif roll < drop + corrupt + disconnect:
                    plans[direction][index] = Fault("disconnect")
                elif roll < drop + corrupt + disconnect + delay:
                    plans[direction][index] = Fault("delay", delay=delay_seconds)
        return cls(to_server=plans[TO_SERVER], to_client=plans[TO_CLIENT])


class FaultProxy:
    """A frame-aware TCP proxy applying a :class:`FaultPlan`.

    Point a client at :attr:`address` and the proxy forwards its frames
    to ``upstream``, consulting the plan once per frame per direction.
    Accepts any number of (re)connections; each gets its own upstream
    connection and a pump thread per direction.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: FaultPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = upstream
        self.plan = plan if plan is not None else FaultPlan()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._threads: set[threading.Thread] = set()
        self._accept_thread: threading.Thread | None = None
        self._closing = False

    def start(self) -> "FaultProxy":
        """Accept connections on a background daemon thread."""
        thread = threading.Thread(
            target=self._accept_loop, name="vchain-fault-proxy", daemon=True
        )
        with self._lock:
            self._accept_thread = thread
        thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                server = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._conns.update((client, server))
            for src, dst, direction in (
                (client, server, TO_SERVER),
                (server, client, TO_CLIENT),
            ):
                thread = threading.Thread(
                    target=self._pump, args=(src, dst, direction), daemon=True
                )
                with self._lock:
                    self._threads.add(thread)
                thread.start()

    def _pump(self, src: socket.socket, dst: socket.socket, direction: str) -> None:
        try:
            while True:
                payload = _recv_frame(src)
                fault = self.plan.next_fault(direction)
                if fault.kind == "drop":
                    continue
                if fault.kind == "disconnect":
                    return
                if fault.kind == "delay":
                    time.sleep(fault.delay)
                if fault.kind == "corrupt" and payload:
                    tampered = bytearray(payload)
                    index = fault.offset % len(tampered)
                    tampered[index] ^= fault.xor_mask
                    payload = bytes(tampered)
                if fault.kind == "truncate":
                    dst.sendall(
                        struct.pack(">I", len(payload)) + payload[: fault.keep_bytes]
                    )
                    return
                _send_frame(dst, payload)
        except (TransportError, OSError):
            return  # either side hung up; tear the pair down below
        finally:
            for sock in (src, dst):
                _shutdown(sock)
            with self._lock:
                self._conns.discard(src)
                self._conns.discard(dst)
                self._threads.discard(threading.current_thread())

    def stop(self) -> None:
        """Close the listener and every connection pair."""
        self._closing = True
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            _shutdown(conn)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
