"""Deterministic replay of recorded serving-tier sessions.

:func:`replay_recording` re-drives a :class:`~repro.wire.SessionRecording`
against a live server: every recorded request is sent verbatim (one
socket per recorded channel) and every recorded response is compared to
the live answer byte for byte — after :func:`normalize_response` maps
both sides through the same normalization, which zeroes the fields that
legitimately vary between runs (SP-side timings in ``QueryStats``, the
whole ``ServerStats`` snapshot) and leaves everything else, VO bytes
included, untouched.  A recording therefore pins the *semantics* of a
session — results, proofs, deliveries, error frames — across code
changes, server implementations (threaded vs async) and replays.
"""

from __future__ import annotations

import hashlib
import socket
from dataclasses import dataclass

from repro.api.transport import _recv_frame, _send_frame
from repro.core.prover import QueryStats
from repro.crypto.backend import PairingBackend
from repro.errors import ReproError
from repro.wire import (
    DIR_REQUEST,
    QueryRequest,
    RecordedFrame,
    ServerStats,
    SessionRecording,
    StatsRequest,
    WireError,
    decode_query_response,
    decode_request,
    encode_query_response,
    encode_stats_response,
    peek_deadline,
)

_STATUS_OK = 0

#: stats responses normalize to this constant snapshot: the counters
#: depend on request interleaving and on which server kind is attached,
#: neither of which a byte-parity gate should pin
_EMPTY_STATS = ServerStats(endpoint={}, caches={}, engine={}, pool=None, server=None)


@dataclass(frozen=True)
class ReplayMismatch:
    """One recorded/live response pair that differed after normalization."""

    seq: int
    channel: int
    request: bytes
    expected: bytes
    actual: bytes


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one replay run."""

    requests: int
    responses: int
    channels: int
    mismatches: tuple[ReplayMismatch, ...]
    #: sha256 over the normalized live responses, in replay order —
    #: equal digests mean byte-identical server behaviour
    digest: str

    @property
    def ok(self) -> bool:
        return not self.mismatches


def normalize_response(
    backend: PairingBackend, request_payload: bytes, response: bytes
) -> bytes:
    """Map a response frame to its run-independent canonical form.

    ``request_payload`` is the request the response answered — the
    response body's meaning depends on the request kind.  Query
    responses get their :class:`~repro.core.prover.QueryStats` zeroed
    (wall-clock timings vary run to run; results and VO bytes must
    not), stats responses collapse to an empty snapshot, and error
    frames plus every other response kind pass through unchanged.
    Frames that fail to decode — a tampered corpus entry, say — also
    pass through unchanged, so the mismatch surfaces instead of hiding
    behind a normalization error.
    """
    if not response or response[0] != _STATUS_OK:
        return response
    try:
        _deadline_ms, inner = peek_deadline(request_payload)
        request = decode_request(inner)
    except WireError:
        return response
    body = response[1:]
    try:
        if isinstance(request, QueryRequest):
            results, vo, _stats = decode_query_response(backend, body)
            body = encode_query_response(backend, results, vo, QueryStats())
        elif isinstance(request, StatsRequest):
            body = encode_stats_response(_EMPTY_STATS)
        else:
            return response
    except ReproError:
        return response
    return bytes([_STATUS_OK]) + body


def normalize_recording(
    backend: PairingBackend, recording: SessionRecording
) -> SessionRecording:
    """Normalize every response frame and collapse timestamps to seq.

    Applied before committing a recording as a regression corpus, so
    the ``.vrec`` bytes themselves are reproducible; normalization is
    idempotent, so replaying a normalized corpus still compares clean.
    """
    last_request: dict[int, bytes] = {}
    frames: list[RecordedFrame] = []
    for frame in recording.frames:
        payload = frame.payload
        if frame.direction == DIR_REQUEST:
            last_request[frame.channel] = payload
        else:
            payload = normalize_response(
                backend, last_request.get(frame.channel, b""), payload
            )
        frames.append(
            RecordedFrame(
                seq=frame.seq,
                channel=frame.channel,
                direction=frame.direction,
                timestamp_us=frame.seq,
                payload=payload,
            )
        )
    return SessionRecording(
        label=recording.label, meta=dict(recording.meta), frames=tuple(frames)
    )


def replay_recording(
    recording: SessionRecording,
    address: tuple[str, int],
    backend: PairingBackend,
    *,
    timeout: float = 30.0,
) -> ReplayReport:
    """Re-drive a recording against a live server at ``address``.

    Frames are replayed in recorded order: requests go out verbatim on
    their channel's connection (dialed lazily, one per channel), and
    each recorded response blocks until the live server answers on that
    channel, then both sides are normalized and compared.  Replay is
    strictly sequential, so a deterministic server produces the same
    :attr:`ReplayReport.digest` every time.
    """
    sockets: dict[int, socket.socket] = {}
    pending: dict[int, bytes] = {}
    mismatches: list[ReplayMismatch] = []
    digest = hashlib.sha256()
    requests = responses = 0
    try:
        for frame in recording.frames:
            if frame.direction == DIR_REQUEST:
                sock = sockets.get(frame.channel)
                if sock is None:
                    sock = socket.create_connection(address, timeout=timeout)
                    sock.settimeout(timeout)
                    sockets[frame.channel] = sock
                _send_frame(sock, frame.payload)
                pending[frame.channel] = frame.payload
                requests += 1
            else:
                sock = sockets.get(frame.channel)
                if sock is None:
                    raise WireError(
                        f"recorded response on channel {frame.channel} "
                        "precedes any request"
                    )
                actual = _recv_frame(sock)
                request_payload = pending.get(frame.channel, b"")
                expected = normalize_response(backend, request_payload, frame.payload)
                live = normalize_response(backend, request_payload, actual)
                digest.update(live)
                if expected != live:
                    mismatches.append(
                        ReplayMismatch(
                            seq=frame.seq,
                            channel=frame.channel,
                            request=request_payload,
                            expected=expected,
                            actual=live,
                        )
                    )
                responses += 1
    finally:
        for sock in sockets.values():
            try:
                sock.close()
            except OSError:
                pass
    return ReplayReport(
        requests=requests,
        responses=responses,
        channels=len(sockets),
        mismatches=tuple(mismatches),
        digest=digest.hexdigest(),
    )
