"""Deterministic time sources for the serving-tier test harness."""

from __future__ import annotations

import threading


class ManualClock:
    """A monotonic clock that advances only when told to.

    Drop-in for ``time.monotonic`` anywhere a component accepts a
    ``clock`` callable (the async server's rate limiter,
    :func:`~repro.api.transport.dispatch_request` deadlines, ...), so
    tests drive time-dependent branches by calling :meth:`advance`
    instead of sleeping.  Thread-safe: the component under test reads
    the clock from its own threads.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        with self._lock:
            self._now += seconds
            return self._now
