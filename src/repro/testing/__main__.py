"""Command-line replay driver: ``python -m repro.testing <command>``.

``replay`` re-drives one or more ``.vrec`` recordings, either against a
server it spins up itself from the recording's metadata (``--serve
async|threaded``, the corpus path) or against an already-running
endpoint (``--address host:port``).  The exit status is 0 only when
every recording produced exactly the mismatch count its metadata
promises (``expect_mismatches``, default 0) — so the forged-VO corpus
*must* mismatch for the run to pass.

``inspect`` prints a recording's metadata and frame inventory.
"""

from __future__ import annotations

import argparse

from repro.testing.corpus import CorpusReplayer, corpus_network
from repro.testing.recorder import load_recording
from repro.testing.replay import ReplayReport, replay_recording
from repro.wire import DIR_REQUEST


def _expected_mismatches(meta: dict[str, str]) -> int:
    return int(meta.get("expect_mismatches", "0"))


def _report_line(path: str, report: ReplayReport, expected: int) -> str:
    verdict = "ok" if len(report.mismatches) == expected else "FAIL"
    return (
        f"{verdict} {path}: {report.requests} request(s), "
        f"{report.responses} response(s), {len(report.mismatches)} "
        f"mismatch(es) (expected {expected}), digest {report.digest[:16]}"
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.recordings:
        recording = load_recording(path)
        expected = _expected_mismatches(recording.meta)
        if args.address is not None:
            host, _sep, port = args.address.rpartition(":")
            net = corpus_network(recording.meta)
            try:
                report = replay_recording(
                    recording, (host, int(port)), net.accumulator.backend
                )
            finally:
                net.close()
        else:
            report = CorpusReplayer().replay(path, server=args.serve)
        print(_report_line(path, report, expected), flush=True)
        if len(report.mismatches) != expected:
            failures += 1
            for mismatch in report.mismatches[:3]:
                print(
                    f"  seq {mismatch.seq} channel {mismatch.channel}: "
                    f"expected {len(mismatch.expected)} byte(s), "
                    f"got {len(mismatch.actual)}",
                    flush=True,
                )
    return 1 if failures else 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    for path in args.recordings:
        recording = load_recording(path)
        requests = sum(
            1 for frame in recording.frames if frame.direction == DIR_REQUEST
        )
        channels = {frame.channel for frame in recording.frames}
        nbytes = sum(len(frame.payload) for frame in recording.frames)
        print(f"{path}: label={recording.label!r}")
        for key in sorted(recording.meta):
            print(f"  meta {key} = {recording.meta[key]}")
        print(
            f"  {len(recording.frames)} frame(s): {requests} request(s), "
            f"{len(recording.frames) - requests} response(s) over "
            f"{len(channels)} channel(s), {nbytes} payload byte(s)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Replay and inspect recorded serving-tier sessions.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    replay = commands.add_parser("replay", help="re-drive recordings, check parity")
    replay.add_argument("recordings", nargs="+", help=".vrec files to replay")
    replay.add_argument(
        "--serve",
        choices=("async", "threaded"),
        default="async",
        help="serve the recording's own network with this server kind",
    )
    replay.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="replay against an already-running server instead of serving",
    )
    replay.set_defaults(func=_cmd_replay)

    inspect = commands.add_parser("inspect", help="print metadata and frame counts")
    inspect.add_argument("recordings", nargs="+", help=".vrec files to inspect")
    inspect.set_defaults(func=_cmd_inspect)

    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    raise SystemExit(main())
