"""Pytest fixtures for the record/replay harness.

Kept out of ``repro.testing.__init__`` so importing the library never
requires pytest; test suites opt in with::

    from repro.testing.fixtures import corpus_replayer  # noqa: F401
"""

from __future__ import annotations

import pytest

from repro.testing.corpus import CorpusReplayer


@pytest.fixture()
def corpus_replayer() -> CorpusReplayer:
    """Replays committed ``.vrec`` corpora against live servers."""
    return CorpusReplayer()
