"""vChain reproduction: verifiable Boolean range queries over blockchain
databases (Xu, Zhang, Xu — SIGMOD 2019).

Quickstart::

    from repro import VChainNetwork

    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated")
    net.mine([...objects...], timestamp=0)

    resp = (net.client.query()
                .window(0, 100)
                .range(low=(0,), high=(50,))
                .all_of("Sedan")
                .any_of("Benz", "BMW")
                .execute())
    resp.raise_for_forgery()          # or check resp.ok
    print(resp.results, resp.vo_nbytes, resp.sp_seconds, resp.user_seconds)

    with net.client.subscribe().any_of("Benz").open() as stream:
        net.mine([...more objects...], timestamp=30)
        for delivery in stream.poll():
            print(delivery.heights(), delivery.results)

The client talks to the service provider through a pluggable
:class:`repro.api.Transport`: in-process by default, or over a
length-prefixed socket protocol (:class:`repro.api.SocketServer` +
``VChainClient.connect``) where every request and response round-trips
through canonical :mod:`repro.wire` bytes.  ``backend_name="ss512"``
swaps in the real supersingular pairing; ``"simulated"`` keeps the
identical algebra on exponent arithmetic for large runs (see
DESIGN.md).  ``create(data_dir=...)`` makes the chain durable
(:mod:`repro.storage`) and ``VChainNetwork.open`` brings it back in a
later process with verifiable answers intact.  The legacy
tuple-returning entrypoints (``QueryUser.query``,
``ServiceProvider.time_window_query``) still work but emit
:class:`DeprecationWarning` — see ``docs/API.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.accumulators import ElementEncoder
from repro.accumulators.base import MultisetAccumulator
from repro.api import ServiceEndpoint, VChainClient
from repro.chain import Block, Blockchain, DataObject, Miner, ProtocolParams
from repro.core.sp import ServiceProvider
from repro.core.user import QueryUser
from repro.parallel import CryptoPool, ParallelConfig, make_pool, resolve_config
from repro.storage.bootstrap import (
    ChainSetup,
    StorageTarget,
    create_chain_setup,
    open_chain_setup,
)

__version__ = "1.9.0"

__all__ = [
    "CryptoPool",
    "ParallelConfig",
    "VChainClient",
    "VChainNetwork",
    "__version__",
    "make_pool",
]


@dataclass
class VChainNetwork:
    """A fully wired miner + SP + light-node user sharing one protocol.

    This is the three-party system model of the paper's Fig 3 in one
    object, for examples and tests; the individual pieces compose just
    as well by hand.  ``net.client`` is a ready
    :class:`repro.api.VChainClient` over an in-process transport.
    """

    params: ProtocolParams
    accumulator: MultisetAccumulator
    encoder: ElementEncoder
    chain: Blockchain
    miner: Miner
    sp: ServiceProvider
    user: QueryUser
    data_dir: str | None = None
    pool: CryptoPool | None = None
    _endpoint: ServiceEndpoint | None = field(default=None, repr=False)
    _client: VChainClient | None = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        acc_name: str = "acc2",
        backend_name: str = "simulated",
        params: ProtocolParams | None = None,
        seed: int | None = None,
        acc1_capacity: int = 4096,
        data_dir: "StorageTarget | None" = None,
        fsync: bool = True,
        workers: int = 1,
        parallel: ParallelConfig | None = None,
        stripes: int | None = None,
        parity: int = 2,
    ) -> "VChainNetwork":
        """Trusted setup + empty chain + one of each party.

        With ``data_dir`` the chain is file-backed: every mined block is
        fsync'd to an append-only log and the trusted setup is recorded
        in the directory's manifest, so :meth:`open` can bring the whole
        network back in a later process.  ``create`` refuses a directory
        that already holds a chain — reopen those instead.

        ``stripes`` erasure-codes the log across ``stripes + parity``
        node directories under (or listed in) ``data_dir``, tolerating
        up to ``parity`` lost directories — see
        :class:`repro.storage.StripedBlockStore`.

        ``workers`` scales the crypto across that many worker processes
        (a shared :class:`~repro.parallel.CryptoPool` serving miner, SP
        and user; ``parallel`` accepts a full
        :class:`~repro.parallel.ParallelConfig`).  The default of 1 is
        fully serial; any setting produces byte-identical chains and
        VOs.
        """
        # validate the parallel arguments before anything touches disk:
        # a bad combination must not leave a half-initialised data_dir
        parallel = resolve_config(workers, parallel)
        setup = create_chain_setup(
            data_dir=data_dir,
            acc_name=acc_name,
            backend_name=backend_name,
            params=params,
            seed=seed,
            acc1_capacity=acc1_capacity,
            fsync=fsync,
            stripes=stripes,
            parity=parity,
        )
        return cls._from_setup(setup, parallel=parallel)

    @classmethod
    def open(
        cls,
        data_dir: "StorageTarget",
        fsync: bool = True,
        workers: int = 1,
        parallel: ParallelConfig | None = None,
    ) -> "VChainNetwork":
        """Reopen a persisted network: chain, miner, SP and a fresh
        light node, all wired to the recorded trusted setup.

        The store recovers its log (truncating a damaged tail with a
        warning), every header is re-validated, and the light node
        syncs the recovered headers — so queries verify immediately and
        mining can continue where the previous process stopped.
        Striped deployments reopen from any surviving quorum: pass the
        parent directory or a list of surviving node directories.
        """
        parallel = resolve_config(workers, parallel)
        setup = open_chain_setup(data_dir, fsync=fsync)
        net = cls._from_setup(setup, parallel=parallel)
        net.user.sync_headers(net.chain)
        return net

    @classmethod
    def _from_setup(
        cls,
        setup: ChainSetup,
        parallel: ParallelConfig | None = None,
    ) -> "VChainNetwork":
        """Wire the parties over one setup; ``parallel`` is the already
        resolved config (callers validate ``workers=`` up front)."""
        pool = None
        try:
            pool = make_pool(setup.accumulator, setup.encoder, config=parallel)
            miner = Miner(
                setup.chain, setup.accumulator, setup.encoder, setup.params, pool=pool
            )
            sp = ServiceProvider(
                setup.chain, setup.accumulator, setup.encoder, setup.params, pool=pool
            )
            user = QueryUser(setup.accumulator, setup.encoder, setup.params, pool=pool)
            return cls(
                params=setup.params,
                accumulator=setup.accumulator,
                encoder=setup.encoder,
                chain=setup.chain,
                miner=miner,
                sp=sp,
                user=user,
                data_dir=setup.data_dir,
                pool=pool,
            )
        except Exception:
            # a failed wiring must not leak worker processes or leave
            # the (possibly durable) store open
            if pool is not None:
                pool.close()
            setup.chain.close()
            raise

    @property
    def endpoint(self) -> ServiceEndpoint:
        """The SP-side request dispatcher all default clients share."""
        if self._endpoint is None:
            self._endpoint = ServiceEndpoint(self.sp)
        return self._endpoint

    @property
    def client(self) -> VChainClient:
        """A verifying client over the in-process transport (cached)."""
        if self._client is None:
            self._client = VChainClient.local(self.endpoint, user=self.user)
        return self._client

    def connect(self, **engine_options) -> VChainClient:
        """A fresh client with its own light node and endpoint.

        ``engine_options`` (``lazy=``, ``use_iptree=``, …) configure the
        new endpoint's subscription engine.
        """
        return VChainClient.local(ServiceEndpoint(self.sp, **engine_options))

    def mine(self, objects: list[DataObject], timestamp: int) -> Block:
        """Mine one block and sync the user's light node."""
        block = self.miner.mine_block(objects, timestamp)
        self.user.sync_headers(self.chain)
        return block

    def mine_dataset(self, dataset) -> list[Block]:
        """Mine every block of a generated dataset; returns the blocks."""
        blocks = [
            self.miner.mine_block(objects, timestamp)
            for timestamp, objects in dataset.blocks
        ]
        self.user.sync_headers(self.chain)
        return blocks

    def close(self) -> None:
        """Shut down the default endpoint and the chain's backing store.

        Required for a durable network before another process reopens
        its ``data_dir``; harmless (and a no-op storage-wise) for
        in-memory networks.
        """
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None
            self._client = None
        if self.pool is not None:
            self.pool.close()
        self.chain.close()

    def __enter__(self) -> "VChainNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
