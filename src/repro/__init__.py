"""vChain reproduction: verifiable Boolean range queries over blockchain
databases (Xu, Zhang, Xu — SIGMOD 2019).

Quickstart::

    from repro import VChainNetwork
    from repro.core import CNFCondition, RangeCondition, TimeWindowQuery

    net = VChainNetwork.create(acc_name="acc2", backend_name="simulated")
    net.mine([...objects...], timestamp=0)
    query = TimeWindowQuery(start=0, end=100,
                            numeric=RangeCondition(low=(0,), high=(50,)),
                            boolean=CNFCondition.of([["Sedan"], ["Benz", "BMW"]]))
    results, vo, sp_stats, user_stats = net.user.query(net.sp, query)

``backend_name="ss512"`` swaps in the real supersingular pairing;
``"simulated"`` keeps the identical algebra on exponent arithmetic for
large runs (see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.accumulators import ElementEncoder, make_accumulator
from repro.accumulators.base import MultisetAccumulator
from repro.chain import Blockchain, DataObject, Miner, ProtocolParams
from repro.core.sp import ServiceProvider
from repro.core.user import QueryUser
from repro.crypto import get_backend

__version__ = "1.0.0"

__all__ = [
    "VChainNetwork",
    "__version__",
]


@dataclass
class VChainNetwork:
    """A fully wired miner + SP + light-node user sharing one protocol.

    This is the three-party system model of the paper's Fig 3 in one
    object, for examples and tests; the individual pieces compose just
    as well by hand.
    """

    params: ProtocolParams
    accumulator: MultisetAccumulator
    encoder: ElementEncoder
    chain: Blockchain
    miner: Miner
    sp: ServiceProvider
    user: QueryUser

    @classmethod
    def create(
        cls,
        acc_name: str = "acc2",
        backend_name: str = "simulated",
        params: ProtocolParams | None = None,
        seed: int | None = None,
        acc1_capacity: int = 4096,
    ) -> "VChainNetwork":
        """Trusted setup + empty chain + one of each party."""
        params = params or ProtocolParams()
        backend = get_backend(backend_name)
        rng = random.Random(seed)
        _secret, accumulator = make_accumulator(
            acc_name, backend, capacity=acc1_capacity, rng=rng
        )
        if acc_name == "acc1":
            encoder = ElementEncoder(backend.order - 1)
        else:
            encoder = ElementEncoder(2**32 - 1)
        chain = Blockchain(difficulty_bits=params.difficulty_bits)
        miner = Miner(chain, accumulator, encoder, params)
        sp = ServiceProvider(chain, accumulator, encoder, params)
        user = QueryUser(accumulator, encoder, params)
        return cls(
            params=params,
            accumulator=accumulator,
            encoder=encoder,
            chain=chain,
            miner=miner,
            sp=sp,
            user=user,
        )

    def mine(self, objects: list[DataObject], timestamp: int):
        """Mine one block and sync the user's light node."""
        block = self.miner.mine_block(objects, timestamp)
        self.user.sync_headers(self.chain)
        return block

    def mine_dataset(self, dataset) -> None:
        """Mine every block of a generated dataset."""
        for timestamp, objects in dataset.blocks:
            self.miner.mine_block(objects, timestamp)
        self.user.sync_headers(self.chain)
