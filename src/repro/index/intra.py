"""Intra-block index (paper Section 6.1, Algorithm 2).

A binary Merkle tree over the block's objects where every node carries
three fields: the child hash, the attribute multiset ``W_n`` (union of
its children's), and ``AttDigest_n = acc(W_n)``.  The miner clusters
leaves greedily by Jaccard similarity so that objects likely to
mismatch a query *together* end up under one subtree — one disjointness
proof then prunes the whole subtree.

Hash rules (Definitions 6.1/6.2, with explicit length prefixing):

* leaf:      ``hash = H( H(object) | enc(AttDigest) )``
* internal:  ``hash = H( H(h_left | h_right) | enc(AttDigest) )``

The same module also builds the *flat* (``nil``) tree used as the
no-index baseline: arrival-order leaves, internal nodes carry hashes
only, so every mismatching object needs its own proof.

The build is two-phase so the accumulator work parallelises: a *plan*
phase decides the tree shape (clustering looks only at attribute
multisets, never at digests), then a *commit* phase runs one
``accumulate`` per digest-bearing node — independent pure functions
that a :class:`~repro.parallel.CryptoPool` can fan out across worker
processes with byte-identical results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.accumulators.base import AccumulatorValue, MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.object import DataObject
from repro.crypto.hashing import digest
from repro.errors import ChainError


def encode_digest(backend, value: AccumulatorValue | None) -> bytes:
    """Canonical bytes of an accumulator value (empty for nil nodes)."""
    if value is None:
        return b""
    return b"".join(backend.encode(part) for part in value.parts)


@dataclass
class IndexNode:
    """One node of the intra-block tree (leaf or internal)."""

    node_hash: bytes
    attrs: Counter | None
    att_digest: AccumulatorValue | None
    children: tuple["IndexNode", ...] = ()
    obj: DataObject | None = None

    @property
    def is_leaf(self) -> bool:
        return self.obj is not None

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def iter_leaves(self):
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.iter_leaves()


def children_hash(children: tuple[IndexNode, ...]) -> bytes:
    """``H(h_left | h_right)`` — the child-hash component of a node."""
    return digest(*(child.node_hash for child in children))


def internal_hash(child_component: bytes, digest_bytes: bytes) -> bytes:
    """``H( child_component | enc(AttDigest) )`` for digest-bearing nodes."""
    return digest(child_component, digest_bytes)


def _jaccard(a: Counter, b: Counter) -> float:
    union_size = (a | b).total()
    if union_size == 0:
        return 0.0
    return (a & b).total() / union_size


# -- phase 1: tree planning (structure only, no crypto) -----------------------
@dataclass
class NodePlan:
    """One node of the planned tree: shape decided, digest not committed.

    ``with_digest`` marks the nodes that will carry an ``AttDigest`` —
    every leaf, plus internal nodes outside ``nil`` mode.  Each such
    node is one independent *node-commit work item*:
    ``accumulate(enc(attrs))``.
    """

    attrs: Counter
    children: tuple["NodePlan", ...] = ()
    obj: DataObject | None = None
    with_digest: bool = True

    @property
    def is_leaf(self) -> bool:
        return self.obj is not None


def _plan_leaves(objects: list[DataObject], bits: int) -> list[NodePlan]:
    if not objects:
        raise ChainError("cannot build an index over an empty block")
    return [NodePlan(attrs=obj.attribute_multiset(bits), obj=obj) for obj in objects]


def _plan_merge_rounds(
    nodes: list[NodePlan], clustered: bool, with_digest: bool
) -> NodePlan:
    """Bottom-up pairing rounds (Algorithm 2's loop, over plans)."""
    while len(nodes) > 1:
        merged: list[NodePlan] = []
        while len(nodes) > 1:
            if clustered:
                left_pos = max(range(len(nodes)), key=lambda i: nodes[i].attrs.total())
                left = nodes.pop(left_pos)
                right_pos = max(
                    range(len(nodes)),
                    key=lambda i: _jaccard(left.attrs, nodes[i].attrs),
                )
                right = nodes.pop(right_pos)
            else:
                left = nodes.pop(0)
                right = nodes.pop(0)
            merged.append(
                NodePlan(
                    attrs=left.attrs | right.attrs,  # multiset union (Def. 6.1)
                    children=(left, right),
                    with_digest=with_digest,
                )
            )
        # an odd node is carried up to the next level unchanged
        nodes = merged + nodes
    return nodes[0]


def plan_intra_tree(
    objects: list[DataObject], bits: int, clustered: bool = True
) -> NodePlan:
    """Algorithm 2's shape: greedy Jaccard clustering over attrs only.

    With ``clustered=False`` leaves are paired in arrival order — the
    ablation baseline for the clustering design choice.
    """
    return _plan_merge_rounds(_plan_leaves(objects, bits), clustered, True)


def plan_flat_tree(objects: list[DataObject], bits: int) -> NodePlan:
    """The ``nil`` baseline shape: digests only at leaves, no clustering."""
    return _plan_merge_rounds(_plan_leaves(objects, bits), False, False)


def digest_plan_nodes(plan: NodePlan) -> list[NodePlan]:
    """The digest-bearing nodes in deterministic post-order.

    This is the block's node-commit work list: one ``accumulate`` per
    entry, each independent of all the others.
    """
    ordered: list[NodePlan] = []

    def walk(node: NodePlan) -> None:
        for child in node.children:
            walk(child)
        if node.with_digest:
            ordered.append(node)

    walk(plan)
    return ordered


# -- phase 2: committing digests and hashes -----------------------------------
def commit_tree(
    plan: NodePlan,
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    pool=None,
) -> IndexNode:
    """Realise a planned tree: commit every ``AttDigest``, hash bottom-up.

    With a live :class:`~repro.parallel.CryptoPool` the node commits run
    on worker processes; each digest is a pure function of its node's
    multiset, so the resulting tree is byte-identical to a serial build.
    """
    work = digest_plan_nodes(plan)
    encoded = [encoder.encode_multiset(node.attrs) for node in work]
    if pool is not None and not pool.serial:
        digests = pool.map_accumulate(encoded)
    else:
        digests = [accumulator.accumulate(multiset) for multiset in encoded]
    digest_of = {id(node): value for node, value in zip(work, digests)}
    backend = accumulator.backend

    def assemble(node: NodePlan) -> IndexNode:
        att_digest = digest_of.get(id(node))
        if node.is_leaf:
            return IndexNode(
                node_hash=internal_hash(
                    node.obj.serialize(), encode_digest(backend, att_digest)
                ),
                attrs=node.attrs,
                att_digest=att_digest,
                obj=node.obj,
            )
        children = tuple(assemble(child) for child in node.children)
        component = children_hash(children)
        if att_digest is None:
            return IndexNode(
                node_hash=component, attrs=None, att_digest=None, children=children
            )
        return IndexNode(
            node_hash=internal_hash(component, encode_digest(backend, att_digest)),
            attrs=node.attrs,
            att_digest=att_digest,
            children=children,
        )

    return assemble(plan)


def build_intra_tree(
    objects: list[DataObject],
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    bits: int,
    clustered: bool = True,
    pool=None,
) -> IndexNode:
    """Plan + commit in one call (the miner's entry point)."""
    return commit_tree(
        plan_intra_tree(objects, bits, clustered=clustered), accumulator, encoder, pool
    )


def build_flat_tree(
    objects: list[DataObject],
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    bits: int,
    pool=None,
) -> IndexNode:
    """Plan + commit for the ``nil`` baseline."""
    return commit_tree(plan_flat_tree(objects, bits), accumulator, encoder, pool)
