"""Intra-block index (paper Section 6.1, Algorithm 2).

A binary Merkle tree over the block's objects where every node carries
three fields: the child hash, the attribute multiset ``W_n`` (union of
its children's), and ``AttDigest_n = acc(W_n)``.  The miner clusters
leaves greedily by Jaccard similarity so that objects likely to
mismatch a query *together* end up under one subtree — one disjointness
proof then prunes the whole subtree.

Hash rules (Definitions 6.1/6.2, with explicit length prefixing):

* leaf:      ``hash = H( H(object) | enc(AttDigest) )``
* internal:  ``hash = H( H(h_left | h_right) | enc(AttDigest) )``

The same module also builds the *flat* (``nil``) tree used as the
no-index baseline: arrival-order leaves, internal nodes carry hashes
only, so every mismatching object needs its own proof.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.accumulators.base import AccumulatorValue, MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.object import DataObject
from repro.crypto.hashing import digest
from repro.errors import ChainError


def encode_digest(backend, value: AccumulatorValue | None) -> bytes:
    """Canonical bytes of an accumulator value (empty for nil nodes)."""
    if value is None:
        return b""
    return b"".join(backend.encode(part) for part in value.parts)


@dataclass
class IndexNode:
    """One node of the intra-block tree (leaf or internal)."""

    node_hash: bytes
    attrs: Counter | None
    att_digest: AccumulatorValue | None
    children: tuple["IndexNode", ...] = ()
    obj: DataObject | None = None

    @property
    def is_leaf(self) -> bool:
        return self.obj is not None

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def iter_leaves(self):
        if self.is_leaf:
            yield self
        else:
            for child in self.children:
                yield from child.iter_leaves()


def children_hash(children: tuple[IndexNode, ...]) -> bytes:
    """``H(h_left | h_right)`` — the child-hash component of a node."""
    return digest(*(child.node_hash for child in children))


def internal_hash(child_component: bytes, digest_bytes: bytes) -> bytes:
    """``H( child_component | enc(AttDigest) )`` for digest-bearing nodes."""
    return digest(child_component, digest_bytes)


def _make_leaf(
    obj: DataObject,
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    bits: int,
) -> IndexNode:
    attrs = obj.attribute_multiset(bits)
    att_digest = accumulator.accumulate(encoder.encode_multiset(attrs))
    digest_bytes = encode_digest(accumulator.backend, att_digest)
    return IndexNode(
        node_hash=internal_hash(obj.serialize(), digest_bytes),
        attrs=attrs,
        att_digest=att_digest,
        obj=obj,
    )


def _merge(
    left: IndexNode,
    right: IndexNode,
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    with_digest: bool,
) -> IndexNode:
    children = (left, right)
    component = children_hash(children)
    if not with_digest:
        return IndexNode(node_hash=component, attrs=None, att_digest=None, children=children)
    attrs = left.attrs | right.attrs  # multiset union (Definition 6.1)
    att_digest = accumulator.accumulate(encoder.encode_multiset(attrs))
    digest_bytes = encode_digest(accumulator.backend, att_digest)
    return IndexNode(
        node_hash=internal_hash(component, digest_bytes),
        attrs=attrs,
        att_digest=att_digest,
        children=children,
    )


def _jaccard(a: Counter, b: Counter) -> float:
    union_size = (a | b).total()
    if union_size == 0:
        return 0.0
    return (a & b).total() / union_size


def build_intra_tree(
    objects: list[DataObject],
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    bits: int,
    clustered: bool = True,
) -> IndexNode:
    """Algorithm 2: bottom-up greedy Jaccard clustering.

    With ``clustered=False`` leaves are paired in arrival order — the
    ablation baseline for the clustering design choice.
    """
    if not objects:
        raise ChainError("cannot build an index over an empty block")
    nodes = [_make_leaf(obj, accumulator, encoder, bits) for obj in objects]
    while len(nodes) > 1:
        merged: list[IndexNode] = []
        while len(nodes) > 1:
            if clustered:
                left_pos = max(range(len(nodes)), key=lambda i: nodes[i].attrs.total())
                left = nodes.pop(left_pos)
                right_pos = max(
                    range(len(nodes)), key=lambda i: _jaccard(left.attrs, nodes[i].attrs)
                )
                right = nodes.pop(right_pos)
            else:
                left = nodes.pop(0)
                right = nodes.pop(0)
            merged.append(_merge(left, right, accumulator, encoder, with_digest=True))
        # an odd node is carried up to the next level unchanged
        nodes = merged + nodes
    return nodes[0]


def build_flat_tree(
    objects: list[DataObject],
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    bits: int,
) -> IndexNode:
    """The ``nil`` baseline: digests only at leaves, no clustering."""
    if not objects:
        raise ChainError("cannot build an index over an empty block")
    nodes = [_make_leaf(obj, accumulator, encoder, bits) for obj in objects]
    while len(nodes) > 1:
        merged = []
        while len(nodes) > 1:
            left = nodes.pop(0)
            right = nodes.pop(0)
            merged.append(_merge(left, right, accumulator, encoder, with_digest=False))
        nodes = merged + nodes
    return nodes[0]
