"""Authenticated indexes: intra-block tree and inter-block skip list.

Lazy exports (PEP 562) — :mod:`repro.chain.block` imports
:mod:`repro.index.intra` while :mod:`repro.index.inter` imports
:mod:`repro.chain.block`, so the package ``__init__`` must not import
both eagerly.
"""

from importlib import import_module

_EXPORTS = {
    "build_skip_entries": "repro.index.inter",
    "pre_skipped_hash": "repro.index.inter",
    "skip_distances": "repro.index.inter",
    "IndexNode": "repro.index.intra",
    "build_flat_tree": "repro.index.intra",
    "build_intra_tree": "repro.index.intra",
    "children_hash": "repro.index.intra",
    "encode_digest": "repro.index.intra",
    "internal_hash": "repro.index.intra",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.index' has no attribute {name!r}")
    return getattr(import_module(module_name), name)
