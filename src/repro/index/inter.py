"""Inter-block index construction (paper Section 6.2, Fig 7).

Each block carries a skip list whose entry at distance ``k`` summarises
the attribute multisets of the ``k`` most recent blocks (the current
one included — Algorithm 4 skips the current block too when a skip
matches).  The multiset *sum* is used so that under acc2 the entry's
digest is the plain group product of the covered blocks' digests; that
linearity is what makes Table 1's acc2 construction times for ``both``
so much lower than acc1's.

Entry binding: ``hash_Lk = H(PreSkippedHash_Lk | enc(AttDigest_Lk))``,
``SkipListRoot = H(hash_L1 | hash_L2 | ...)``.  ``PreSkippedHash_Lk``
commits to the *identity* of the covered blocks: the current block's
Merkle root plus the header hashes of the ``k-1`` preceding blocks (the
current header hash cannot be used — it would be circular).  A light
node can recompute it from its own header store, so a lying SP cannot
re-target a skip proof at different blocks.
"""

from __future__ import annotations

from collections import Counter

from repro.accumulators.base import MultisetAccumulator
from repro.accumulators.encoding import ElementEncoder
from repro.chain.block import Block, SkipEntry
from repro.crypto.hashing import digest


def skip_distances(size: int, base: int = 4) -> list[int]:
    """The geometric distance schedule: ``base · 2^i`` for ``i < size``.

    ``size=5, base=4`` gives 4, 8, 16, 32, 64 — matching the paper's
    "size of SkipList 5 / maximum jump 64" axis in Figs 20–22.
    """
    return [base * (1 << i) for i in range(size)]


def pre_skipped_hash(merkle_root: bytes, prev_header_hashes: list[bytes]) -> bytes:
    """Bind the covered block identities (newest first)."""
    return digest(merkle_root, *prev_header_hashes)


def build_skip_entries(
    previous_blocks: list[Block],
    merkle_root: bytes,
    attrs_sum: Counter,
    sum_digest,
    accumulator: MultisetAccumulator,
    encoder: ElementEncoder,
    size: int,
    base: int = 4,
) -> list[SkipEntry]:
    """Skip entries for the block being mined.

    ``previous_blocks`` is the current chain (oldest→newest);
    ``merkle_root`` / ``attrs_sum`` / ``sum_digest`` describe the new
    block.  Entries are built only for distances fully covered by
    existing history; shorter chains simply have fewer entries, which
    the SkipListRoot hash reflects.
    """
    entries: list[SkipEntry] = []
    height = len(previous_blocks)  # height of the block being mined
    for distance in skip_distances(size, base):
        if distance - 1 > height:
            break  # not enough history for this (and any larger) distance
        covered = tuple(range(height - distance + 1, height + 1))
        attrs = Counter(attrs_sum)
        for h in covered[:-1]:
            attrs.update(previous_blocks[h].attrs_sum)
        if accumulator.supports_aggregation:
            # acc2: digest of a multiset sum is the product of digests —
            # reuse the per-block digests instead of re-accumulating.
            parts = [sum_digest] + [previous_blocks[h].sum_digest for h in covered[:-1]]
            att_digest = accumulator.sum_values(parts)
        else:
            att_digest = accumulator.accumulate(encoder.encode_multiset(attrs))
        prev_hashes = [
            previous_blocks[h].header.block_hash() for h in reversed(covered[:-1])
        ]
        entries.append(
            SkipEntry(
                distance=distance,
                covered_heights=covered,
                attrs=attrs,
                att_digest=att_digest,
                pre_skipped_hash=pre_skipped_hash(merkle_root, prev_hashes),
            )
        )
    return entries
