#!/usr/bin/env python3
"""cProfile harness over the hot loop: mine → time-window query → verify.

Future perf PRs start here instead of re-deriving the setup: build a
small chain, run a realistic Boolean range query through the client
API, and print the top functions by cumulative time for each phase.

Examples::

    PYTHONPATH=src python tools/profile_query.py
    PYTHONPATH=src python tools/profile_query.py --backend ss512 --blocks 4
    PYTHONPATH=src python tools/profile_query.py --phase verify --limit 40
    PYTHONPATH=src python tools/profile_query.py --out /tmp/query.pstats

With ``--out`` the combined stats are written for ``snakeviz`` /
``pstats`` consumption instead of being printed.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import foursquare_like, make_time_window_queries

PHASES = ("mine", "query", "verify")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="simulated",
                        choices=["simulated", "ss512", "bn254"])
    parser.add_argument("--acc", default="acc2", choices=["acc1", "acc2"])
    parser.add_argument("--blocks", type=int, default=16)
    parser.add_argument("--objects", type=int, default=6,
                        help="objects per block")
    parser.add_argument("--window", type=int, default=8,
                        help="query window size in blocks")
    parser.add_argument("--queries", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1,
                        help="CryptoPool worker processes (1 = serial); "
                        "profiles then show the parent-side orchestration "
                        "while the crypto runs in the workers")
    parser.add_argument("--accel", default=None,
                        choices=["auto", "pure", "gmpy2", "native"],
                        help="arithmetic provider for the crypto hot loops "
                        "(default: probe for the fastest installed)")
    parser.add_argument("--phase", choices=[*PHASES, "all"], default="all",
                        help="profile only one phase")
    parser.add_argument("--sort", default="cumulative",
                        help="pstats sort key (cumulative, tottime, ...)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows per phase report")
    parser.add_argument("--out", default=None,
                        help="write combined .pstats instead of printing")
    args = parser.parse_args()

    if args.accel is not None:
        from repro.crypto.accel import dispatch

        dispatch.set_impl(args.accel)

    dataset = foursquare_like(args.blocks, objects_per_block=args.objects)
    params = ProtocolParams(mode="both", bits=dataset.bits,
                            skip_size=3, skip_base=4, difficulty_bits=0)
    net = VChainNetwork.create(
        acc_name=args.acc, backend_name=args.backend, params=params,
        seed=17, acc1_capacity=1 << 12, workers=args.workers,
    )
    queries = make_time_window_queries(
        dataset, n_queries=args.queries, window_blocks=args.window, seed=29
    )

    profilers = {phase: cProfile.Profile() for phase in PHASES}

    with profilers["mine"]:
        net.mine_dataset(dataset)

    batch = net.accumulator.supports_aggregation
    answers = []
    with profilers["query"]:
        for query in queries:
            answers.append(net.sp.processor.time_window_query(query, batch=batch))

    with profilers["verify"]:
        for query, (results, vo, _stats) in zip(queries, answers):
            net.user.verify(query, results, vo)

    net.close()  # drain the CryptoPool, if any

    if args.out:
        combined = pstats.Stats(*profilers.values())
        combined.dump_stats(args.out)
        print(f"wrote {args.out}")
        return 0

    wanted = PHASES if args.phase == "all" else (args.phase,)
    for phase in wanted:
        print(f"\n=== {phase} ({args.backend}/{args.acc}, "
              f"{args.blocks} blocks × {args.objects} objects) ===")
        stats = pstats.Stats(profilers[phase])
        stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
