#!/usr/bin/env python3
"""Generate (or verify) the recorded-session corpus under tests/corpus/.

The corpus is a set of ``.vrec`` recordings of real client sessions
against the seeded demo network (see ``repro.testing.corpus``).  The
files are committed, and CI regenerates them with ``--check`` on every
push: any byte of drift — a codec change, a nondeterministic field
leaking into a response, a protocol reordering — fails the build until
the corpus is deliberately re-recorded.

Usage:

    PYTHONPATH=src python tools/record_corpus.py tests/corpus
    PYTHONPATH=src python tools/record_corpus.py tests/corpus --check
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.testing import CORPUS_SCENARIOS, record_corpus


def check(corpus_dir: Path) -> int:
    """Re-record every scenario and byte-compare against the corpus."""
    with tempfile.TemporaryDirectory() as scratch:
        fresh = record_corpus(scratch)
    failures = 0
    for scenario in CORPUS_SCENARIOS:
        path = corpus_dir / f"{scenario}.vrec"
        if not path.exists():
            print(f"MISSING {path}")
            failures += 1
            continue
        committed = path.read_bytes()
        if committed != fresh[scenario]:
            print(
                f"DRIFT {path}: committed {len(committed)} byte(s), "
                f"regenerated {len(fresh[scenario])} byte(s)"
            )
            failures += 1
        else:
            print(f"ok {path}: {len(committed)} byte(s)")
    if failures:
        print(
            f"{failures} corpus file(s) drifted; if the protocol change is "
            f"intentional, re-record with: python tools/record_corpus.py "
            f"{corpus_dir}"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", help="corpus directory (e.g. tests/corpus)")
    parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate in a scratch dir and byte-compare, write nothing",
    )
    args = parser.parse_args(argv)
    corpus_dir = Path(args.out_dir)
    if args.check:
        return check(corpus_dir)
    written = record_corpus(corpus_dir)
    for scenario in CORPUS_SCENARIOS:
        print(f"wrote {corpus_dir / f'{scenario}.vrec'}: "
              f"{len(written[scenario])} byte(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
