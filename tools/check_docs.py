#!/usr/bin/env python3
"""Execute every ``python`` code fence in the given Markdown files.

Documentation rots the moment nobody runs it; this runner makes the
docs part of the test surface.  Rules:

* fences whose info string is exactly ``python`` are executed;
  anything else (```text, ```pycon, ```python no-run, ...) is skipped;
* blocks in one file run **cumulatively** in a single namespace, top to
  bottom — later snippets may use names earlier snippets defined, which
  keeps the prose free of repeated imports;
* each file runs with a fresh temporary working directory, so snippets
  may write relative paths (``./chain-data``) without polluting the
  repo;
* a failure reports the file and the line the fence opened on, then the
  traceback.

Usage:  PYTHONPATH=src python tools/check_docs.py README.md docs/*.md
"""

from __future__ import annotations

import os
import sys
import tempfile
import traceback
from pathlib import Path


def extract_blocks(text: str) -> list[tuple[int, str]]:
    """``(first_line_of_fence, code)`` for every runnable python fence."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    in_block = False
    runnable = False
    start = 0
    body: list[str] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped.startswith("```"):
            in_block = True
            runnable = stripped[3:].strip() == "python"
            start = lineno
            body = []
        elif in_block and stripped == "```":
            if runnable:
                blocks.append((start, "\n".join(body)))
            in_block = False
        elif in_block:
            body.append(line)
    if in_block:
        raise SystemExit(f"unterminated code fence opened at line {start}")
    return blocks


def run_file(path: Path) -> list[str]:
    """Run a file's blocks cumulatively; returns failure descriptions."""
    blocks = extract_blocks(path.read_text())
    if not blocks:
        print(f"{path}: no runnable python blocks")
        return []
    namespace: dict = {"__name__": f"docs:{path.name}"}
    failures: list[str] = []
    original_cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="check_docs_") as workdir:
        os.chdir(workdir)
        try:
            for lineno, code in blocks:
                label = f"{path}:{lineno}"
                try:
                    exec(compile(code, label, "exec"), namespace)
                except Exception:
                    failures.append(f"{label}\n{traceback.format_exc()}")
                    break  # later blocks likely depend on this one
        finally:
            os.chdir(original_cwd)
    status = "FAIL" if failures else "ok"
    print(f"{path}: {len(blocks)} block(s) {status}")
    return failures


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    failures: list[str] = []
    for name in argv:
        failures.extend(run_file(Path(name)))
    for failure in failures:
        print(f"\n--- doc snippet failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
