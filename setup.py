"""Legacy setup shim: this environment's pip lacks the ``wheel`` package,
so editable installs must go through ``setup.py develop``.  All project
metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
