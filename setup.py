"""Legacy setup shim: this environment's pip lacks the ``wheel`` package,
so editable installs must go through ``setup.py develop``.  All project
metadata lives in ``pyproject.toml``.

The one thing that cannot be declared statically is the optional
``_accelmodule`` C extension (the "native" accel provider).  It is marked
``optional``: a missing compiler degrades the install to pure Python and
the runtime probe in :mod:`repro.crypto.accel.dispatch` falls back.
Build it in place with ``python setup.py build_ext --inplace``.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.crypto.accel._accelmodule",
            sources=["src/repro/crypto/accel/_accelmodule.c"],
            optional=True,
            extra_compile_args=["-O2"],
        )
    ]
)
