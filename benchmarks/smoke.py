#!/usr/bin/env python3
"""CI smoke benchmark: one tiny end-to-end workload per backend.

Runs a miniature time-window workload plus one subscription round
through the client API and prints the three paper metrics.  Sized to
finish well under a minute even on the pure-python ``ss512`` pairing —
this is a liveness check for CI, not a measurement.

Run:  python benchmarks/smoke.py [simulated|ss512]
"""

from __future__ import annotations

import sys
import time

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import ethereum_like, make_time_window_queries

from common import print_row

#: per-backend scale: (n_blocks, objects_per_block, n_queries)
_SCALE = {"simulated": (16, 4, 3), "ss512": (4, 2, 1)}


def main(backend_name: str) -> None:
    n_blocks, per_block, n_queries = _SCALE[backend_name]
    started = time.perf_counter()
    dataset = ethereum_like(n_blocks, objects_per_block=per_block, seed=13)
    params = ProtocolParams(
        mode="both", bits=dataset.bits, skip_size=2, difficulty_bits=0
    )
    net = VChainNetwork.create(
        acc_name="acc2", backend_name=backend_name, params=params, seed=13
    )
    net.mine_dataset(dataset)

    queries = make_time_window_queries(
        dataset, n_queries=n_queries, window_blocks=max(2, n_blocks // 4), seed=31
    )
    sp_s = user_s = vo_kb = results = 0.0
    for query in queries:
        resp = net.client.execute(query).raise_for_forgery()
        sp_s += resp.sp_seconds
        user_s += resp.user_seconds
        vo_kb += resp.vo_nbytes / 1024
        results += len(resp.results)

    with net.client.subscribe().any_of(dataset.vocabulary[0]).open() as stream:
        net.mine(dataset.blocks[0][1], timestamp=dataset.blocks[-1][0] + 1)
        deliveries = stream.poll()

    print_row(
        f"smoke/{backend_name}",
        {
            "sp_cpu_s": round(sp_s / n_queries, 4),
            "user_cpu_s": round(user_s / n_queries, 4),
            "vo_kb": round(vo_kb / n_queries, 2),
            "avg_results": round(results / n_queries, 1),
            "sub_deliveries": len(deliveries),
            "wall_s": round(time.perf_counter() - started, 1),
        },
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "simulated")
