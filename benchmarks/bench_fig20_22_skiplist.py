"""Figs 20–22 (Appendix D.3) — impact of the skip-list size.

Sweeps the inter-block index's SkipList size over {0, 1, 3, 5}
(maximum jumps {0, 4, 16, 64}; size 0 = intra-only) for acc1 and acc2.
Expected shapes:

* user CPU and VO size monotonically decrease with the skip size
  (more blocks dismissed per proof);
* SP CPU fluctuates: bigger skips aggregate more proofs but feed
  larger multisets into each ProveDisjoint — on the sparse ETH data
  the net effect is a steady decrease, as in the paper;
* acc2 below acc1 on user CPU and VO size throughout (online
  aggregation).
"""

import pytest

from benchmarks.common import (
    build_network,
    print_row,
    run_time_window_workload,
    workload,
)
from repro.datasets import ethereum_like, foursquare_like, weather_like

CHAIN_BLOCKS = 72
WINDOW = 64
SKIP_SIZES = (0, 1, 3, 5)

# slimmer blocks than the other benches: distance-64 skip entries sum 64
# blocks' multisets, and acc1 must re-accumulate that sum per entry —
# the paper pays the same cost on its C++ testbed (cf. Table 1 acc1/both)
_DATASETS = {
    "4SQ": foursquare_like(CHAIN_BLOCKS, objects_per_block=3),
    "WX": weather_like(CHAIN_BLOCKS, objects_per_block=3),
    "ETH": ethereum_like(CHAIN_BLOCKS, objects_per_block=3),
}
_NETWORKS: dict = {}


@pytest.mark.parametrize("skip_size", SKIP_SIZES)
@pytest.mark.parametrize("acc_name", ("acc1", "acc2"))
@pytest.mark.parametrize("dataset_name", ("4SQ", "WX", "ETH"))
def test_skiplist_size(benchmark, dataset_name, acc_name, skip_size):
    dataset = _DATASETS[dataset_name]
    mode = "intra" if skip_size == 0 else "both"
    key = (dataset_name, acc_name, skip_size)
    if key not in _NETWORKS:
        _NETWORKS[key] = build_network(dataset, acc_name, mode, skip_size=skip_size)
    net = _NETWORKS[key]
    queries = workload(dataset, WINDOW)
    result = benchmark.pedantic(
        run_time_window_workload, args=(net, queries), rounds=1, iterations=1
    )
    max_jump = 0 if skip_size == 0 else 4 * (1 << (skip_size - 1))
    info = result.as_info()
    benchmark.extra_info.update(info)
    print_row(
        f"Fig20-22 {dataset_name} {acc_name} skip={skip_size} (jump {max_jump})",
        info,
    )
