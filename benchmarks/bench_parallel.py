#!/usr/bin/env python3
"""Multicore scaling sweep: mine / prove / batch-verify across CryptoPool sizes.

For each backend and each worker count the sweep builds a fresh network
(sharing one :class:`~repro.parallel.CryptoPool` across miner, SP and
user), mines the same dataset, answers the same non-batch query workload
(per-node disjointness proofs — the SP's dominant cost), and
batch-verifies the answers.  Wall-clock per phase goes into
``BENCH_parallel.json`` together with speedups over ``workers=1``.

**Parity is the hard gate**: at every worker count the mined block
encodings and the produced VO bytes are asserted byte-identical to the
serial run — parallelism must be a pure performance change.

Speedup floors (``--check benchmarks/baseline_parallel.json``) only
apply when the machine actually has the cores: scaling cannot be
demonstrated on a 1-core container, so on hosts with fewer than the
baseline's ``min_cores`` the gate records ``cpu_limited`` and passes on
parity alone.  CI runners have >= 4 cores, where the ss512 floor
(>= 2.5x at 4 workers for mining or query proving) is enforced.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_row  # noqa: E402

from repro import VChainNetwork  # noqa: E402
from repro.chain import ProtocolParams  # noqa: E402
from repro.datasets import foursquare_like, make_time_window_queries  # noqa: E402
from repro.parallel import default_workers  # noqa: E402
from repro.wire.block_codec import encode_block  # noqa: E402
from repro.wire.vo_codec import encode_time_window_vo  # noqa: E402


def sweep_backend(
    backend: str, workers_list: list[int], blocks: int, objects: int, n_queries: int
) -> dict:
    dataset = foursquare_like(blocks, objects_per_block=objects)
    params = ProtocolParams(
        mode="both", bits=dataset.bits, skip_size=2, skip_base=4, difficulty_bits=0
    )
    queries = make_time_window_queries(
        dataset, n_queries=n_queries, window_blocks=blocks, seed=29
    )

    mine_s: dict[str, float] = {}
    query_s: dict[str, float] = {}
    verify_s: dict[str, float] = {}
    pools: dict[str, dict] = {}
    reference_blocks: list[bytes] | None = None
    reference_vos: list[bytes] | None = None

    for workers in workers_list:
        net = VChainNetwork.create(
            acc_name="acc2", backend_name=backend, params=params, seed=17,
            workers=workers,
        )
        try:
            started = time.perf_counter()
            net.mine_dataset(dataset)
            mine_s[str(workers)] = time.perf_counter() - started
            chain_bytes = [
                encode_block(net.accumulator.backend, net.chain.block(h))
                for h in range(len(net.chain))
            ]

            items = []
            started = time.perf_counter()
            for query in queries:
                # batch=False exercises the per-mismatch-node proof path,
                # the embarrassingly parallel bulk of SP serving
                results, vo, _stats = net.sp.processor.time_window_query(
                    query, batch=False
                )
                items.append((query, results, vo))
            query_s[str(workers)] = time.perf_counter() - started
            vo_blobs = [
                encode_time_window_vo(net.accumulator.backend, vo)
                for _q, _r, vo in items
            ]

            started = time.perf_counter()
            verified, _vstats = net.user.batch_verify(items)
            verify_s[str(workers)] = time.perf_counter() - started
            assert [len(v) for v in verified] == [len(r) for _q, r, _vo in items]

            if reference_blocks is None:
                reference_blocks, reference_vos = chain_bytes, vo_blobs
            else:
                if chain_bytes != reference_blocks:
                    raise SystemExit(
                        f"PARITY FAILURE: {backend} blocks mined with "
                        f"workers={workers} differ from the serial chain"
                    )
                if vo_blobs != reference_vos:
                    raise SystemExit(
                        f"PARITY FAILURE: {backend} VO bytes at "
                        f"workers={workers} differ from the serial VOs"
                    )
            if net.pool is not None:
                pools[str(workers)] = net.pool.stats().as_info()
        finally:
            net.close()

    def speedups(seconds: dict[str, float]) -> dict[str, float]:
        base = seconds[str(workers_list[0])]
        return {
            k: round(base / v, 2)
            for k, v in seconds.items()
            if k != str(workers_list[0])
        }

    report = {
        "dataset": {"blocks": blocks, "objects_per_block": objects,
                    "queries": n_queries},
        "mine": {"seconds": {k: round(v, 3) for k, v in mine_s.items()},
                 "speedup": speedups(mine_s)},
        "query": {"seconds": {k: round(v, 3) for k, v in query_s.items()},
                  "speedup": speedups(query_s)},
        "batch_verify": {"seconds": {k: round(v, 3) for k, v in verify_s.items()},
                         "speedup": speedups(verify_s)},
        "parity": "ok",
        "pools": pools,
    }
    for phase in ("mine", "query", "batch_verify"):
        print_row(f"{backend}/{phase}", report[phase]["seconds"])
    return report


def best_speedup(backend_report: dict, at_workers: int) -> float:
    """Best mining-or-query speedup at >= ``at_workers`` workers."""
    best = 0.0
    for phase in ("mine", "query"):
        for workers, ratio in backend_report[phase]["speedup"].items():
            if int(workers) >= at_workers:
                best = max(best, ratio)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backends", default="ss512,simulated")
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated sweep; first entry is the baseline")
    parser.add_argument("--blocks", type=int, default=6)
    parser.add_argument("--objects", type=int, default=12,
                        help="objects per block")
    parser.add_argument("--queries", type=int, default=2)
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--check", default=None,
                        help="baseline floors JSON; exit 1 on violation")
    args = parser.parse_args()

    workers_list = [int(w) for w in args.workers.split(",")]
    if workers_list[0] != 1:
        raise SystemExit("the sweep baseline must be workers=1")
    cores = default_workers()  # same resolution CryptoPool uses for workers=0

    report: dict = {
        "cpu_count": cores,
        "workers_swept": workers_list,
        "backends": {},
    }
    for backend in args.backends.split(","):
        report["backends"][backend] = sweep_backend(
            backend, workers_list, args.blocks, args.objects, args.queries
        )

    exit_code = 0
    if args.check:
        floors = json.loads(Path(args.check).read_text())
        backend = floors.get("backend", "ss512")
        at_workers = floors.get("at_workers", 4)
        min_cores = floors.get("min_cores", 4)
        gate: dict = {"backend": backend, "min_speedup": floors["min_speedup"],
                      "at_workers": at_workers}
        if cores < min_cores:
            gate["applies"] = False
            gate["reason"] = (
                f"host has {cores} usable core(s); speedup floors need "
                f">= {min_cores} (parity was still enforced)"
            )
            print(f"SKIP speedup gate: {gate['reason']}")
        else:
            gate["applies"] = True
            measured = best_speedup(report["backends"][backend], at_workers)
            gate["measured"] = measured
            if measured < floors["min_speedup"]:
                print(f"FAIL: best {backend} mine/query speedup {measured:.2f}x "
                      f"at >= {at_workers} workers is under the "
                      f"{floors['min_speedup']:.2f}x floor")
                exit_code = 1
            else:
                print(f"OK: {backend} speedup {measured:.2f}x >= "
                      f"{floors['min_speedup']:.2f}x at >= {at_workers} workers")
        report["gate"] = gate

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
