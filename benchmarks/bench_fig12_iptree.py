"""Fig 12 — subscription processing with and without the IP-tree.

Sweeps the number of registered subscriptions for the four schemes
{realtime, lazy} × {nip, ip} (acc2, both indexes enabled) and reports
the SP's accumulated CPU time.  Expected shape: the IP-tree cuts SP
time by ≥50% (shared mismatch proofs), and the gain grows with the
number of queries.
"""

import pytest

from benchmarks.common import get_dataset, print_row
from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import make_subscription_queries
from repro.subscribe import SubscriptionEngine

CHAIN_BLOCKS = 24
QUERY_COUNTS = (10, 20, 40)
SCHEMES = [
    ("real", False), ("real", True), ("lazy", False), ("lazy", True),
]


def _run_engine(dataset, queries, lazy, use_iptree):
    params = ProtocolParams(mode="both", bits=dataset.bits, skip_size=3, skip_base=4)
    net = VChainNetwork.create(acc_name="acc2", params=params, seed=17)
    engine = SubscriptionEngine(
        net.accumulator, net.encoder, params, use_iptree=use_iptree, lazy=lazy
    )
    for query in queries:
        engine.register(query)
    for timestamp, objects in dataset.blocks:
        block = net.miner.mine_block(objects, timestamp=timestamp)
        engine.process_block(block)
    return engine


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
@pytest.mark.parametrize("timing,use_iptree", SCHEMES)
@pytest.mark.parametrize("dataset_name", ("4SQ", "WX", "ETH"))
def test_fig12_iptree(benchmark, dataset_name, timing, use_iptree, n_queries):
    dataset = get_dataset(dataset_name, CHAIN_BLOCKS)
    queries = make_subscription_queries(dataset, n_queries=n_queries, seed=23)
    engine = benchmark.pedantic(
        _run_engine,
        args=(dataset, queries, timing == "lazy", use_iptree),
        rounds=1,
        iterations=1,
    )
    info = {
        "sp_cpu_s": round(engine.stats.sp_seconds, 4),
        "proofs": engine.stats.proofs_computed,
        "shared": engine.stats.proofs_shared,
    }
    benchmark.extra_info.update(info)
    label = f"{timing}-{'ip' if use_iptree else 'nip'}-acc2"
    print_row(f"Fig12 {dataset_name} {label} q={n_queries}", info)
