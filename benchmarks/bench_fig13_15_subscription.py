"""Figs 13–15 — subscription query performance over the period.

Sweeps the subscription period (in blocks) for {realtime-acc1,
realtime-acc2, lazy-acc2} and reports accumulated SP CPU, accumulated
user CPU and accumulated VO size.  Expected shapes (paper Section 9.3):

* lazy ≪ realtime on user CPU and VO size, growing sub-linearly
  (skip-list + ProofSum aggregation across blocks);
* lazy's SP CPU is generally worse than realtime with the same
  accumulator (aggregation work is the SP's to pay).
"""

import pytest

from benchmarks.common import get_dataset, print_row
from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.chain.light import LightNode
from repro.datasets import make_subscription_queries
from repro.subscribe import SubscriptionClient, SubscriptionEngine

PERIODS = (8, 16, 32)
SCHEMES = (("realtime", "acc1"), ("realtime", "acc2"), ("lazy", "acc2"))
N_QUERIES = 6


def _run_period(dataset, n_blocks, timing, acc_name):
    params = ProtocolParams(mode="both", bits=dataset.bits, skip_size=3, skip_base=4)
    net = VChainNetwork.create(
        acc_name=acc_name, params=params, seed=17, acc1_capacity=1 << 20
    )
    engine = SubscriptionEngine(
        net.accumulator, net.encoder, params, use_iptree=True, lazy=timing == "lazy"
    )
    light = LightNode()
    client = SubscriptionClient(light, net.accumulator, net.encoder, params)
    queries = make_subscription_queries(dataset, n_queries=N_QUERIES, seed=23)
    qids = []
    for query in queries:
        qid = engine.register(query)
        client.track(qid, query)
        qids.append(qid)

    backend = net.accumulator.backend
    user_seconds = 0.0
    vo_kb = 0.0
    deliveries = []
    for timestamp, objects in dataset.blocks[:n_blocks]:
        block = net.miner.mine_block(objects, timestamp=timestamp)
        light.sync(net.chain)
        deliveries.extend(engine.process_block(block))
    if timing == "lazy":
        for qid in qids:
            tail = engine.flush(qid)
            if tail is not None:
                deliveries.append(tail)
    for delivery in deliveries:
        _verified, stats = client.on_delivery(delivery)
        user_seconds += stats.user_seconds
        vo_kb += delivery.vo.nbytes(backend) / 1024
    return engine, user_seconds, vo_kb


@pytest.mark.parametrize("period", PERIODS)
@pytest.mark.parametrize("timing,acc_name", SCHEMES)
@pytest.mark.parametrize("dataset_name", ("4SQ", "WX", "ETH"))
def test_subscription_period(benchmark, dataset_name, timing, acc_name, period):
    dataset = get_dataset(dataset_name, max(PERIODS))
    engine, user_seconds, vo_kb = benchmark.pedantic(
        _run_period, args=(dataset, period, timing, acc_name), rounds=1, iterations=1
    )
    info = {
        "sp_cpu_s": round(engine.stats.sp_seconds, 4),
        "user_cpu_s": round(user_seconds, 4),
        "vo_kb": round(vo_kb, 2),
        "deliveries": engine.stats.deliveries,
    }
    benchmark.extra_info.update(info)
    print_row(f"Fig13-15 {dataset_name} {timing}-{acc_name} p={period}", info)
