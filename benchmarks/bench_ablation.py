"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the contribution of
individual design decisions:

* **Jaccard clustering** (Algorithm 2's greedy pairing) vs arrival-order
  leaf pairing in the intra-block tree.  Expectation: clustering
  reduces mismatch proofs, SP time and VO size on similarity-rich data.
* **IP-tree depth threshold**: deeper grids classify more precisely but
  cost more to maintain; the paper "switches back" past a threshold.
* **Skip-list base**: distance schedules starting at 2 vs 4.
"""

import pytest

from benchmarks.common import (
    get_dataset,
    get_network,
    print_row,
    run_time_window_workload,
    workload,
)
from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import make_subscription_queries
from repro.subscribe import SubscriptionEngine

CHAIN_BLOCKS = 32
WINDOW = 24


@pytest.mark.parametrize("clustered", (True, False))
@pytest.mark.parametrize("dataset_name", ("4SQ", "WX"))
def test_ablation_clustering(benchmark, dataset_name, clustered):
    dataset = get_dataset(dataset_name, CHAIN_BLOCKS)
    net = get_network(dataset_name, CHAIN_BLOCKS, "acc2", "intra", clustered=clustered)
    queries = workload(dataset, WINDOW)
    result = benchmark.pedantic(
        run_time_window_workload, args=(net, queries), rounds=1, iterations=1
    )
    info = result.as_info()
    benchmark.extra_info.update(info)
    label = "jaccard" if clustered else "arrival-order"
    print_row(f"Ablation clustering {dataset_name} {label}", info)


@pytest.mark.parametrize("max_depth", (1, 3, 6))
def test_ablation_iptree_depth(benchmark, max_depth):
    dataset = get_dataset("4SQ", 16)
    queries = make_subscription_queries(dataset, n_queries=20, seed=23)

    def run():
        params = ProtocolParams(mode="both", bits=dataset.bits, skip_size=2)
        net = VChainNetwork.create(acc_name="acc2", params=params, seed=17)
        engine = SubscriptionEngine(
            net.accumulator, net.encoder, params,
            use_iptree=True, iptree_max_depth=max_depth,
        )
        for query in queries:
            engine.register(query)
        for timestamp, objects in dataset.blocks:
            engine.process_block(net.miner.mine_block(objects, timestamp=timestamp))
        return engine

    engine = benchmark.pedantic(run, rounds=1, iterations=1)
    info = {
        "sp_cpu_s": round(engine.stats.sp_seconds, 4),
        "proofs": engine.stats.proofs_computed,
        "shared": engine.stats.proofs_shared,
    }
    benchmark.extra_info.update(info)
    print_row(f"Ablation IP-tree depth={max_depth}", info)


@pytest.mark.parametrize("skip_base", (2, 4))
def test_ablation_skip_base(benchmark, skip_base):
    dataset = get_dataset("ETH", CHAIN_BLOCKS)
    net = get_network(
        "ETH", CHAIN_BLOCKS, "acc2", "both", skip_size=3, skip_base=skip_base
    )
    queries = workload(dataset, WINDOW)
    result = benchmark.pedantic(
        run_time_window_workload, args=(net, queries), rounds=1, iterations=1
    )
    info = result.as_info()
    benchmark.extra_info.update(info)
    print_row(f"Ablation skip-base={skip_base}", info)
