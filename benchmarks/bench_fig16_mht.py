"""Fig 16 — comparison with the MHT baseline across dimensionality.

Synthetic WX-style data with d = 1..9 numeric attributes (keywords
removed — MHTs cannot index set-valued attributes, exactly the paper's
setup).  Reports per-block ADS construction time and the ADS size
normalised by the raw block size.  Expected shapes:

* accumulator construction time roughly flat in d; MHT time blows up
  (2^d − 1 sorted trees per block);
* accumulator ADS stays near-constant; MHT ADS grows exponentially,
  exceeding 10× the raw block beyond d ≈ 3–4.
"""

import pytest

from benchmarks.common import print_row
from repro import VChainNetwork
from repro.baselines import MHTBaseline
from repro.chain import ProtocolParams
from repro.chain.metrics import block_ads_nbytes, raw_block_nbytes
from repro.datasets import weather_like

DIMS = (1, 3, 5, 7, 9)
N_BLOCKS = 2
OBJECTS_PER_BLOCK = 12


def _dataset(dims):
    ds = weather_like(N_BLOCKS, objects_per_block=OBJECTS_PER_BLOCK, dims=dims, seed=7)
    # strip keywords: the MHT baseline cannot handle set-valued attributes
    from repro.chain.object import DataObject

    ds.blocks = [
        (
            ts,
            [
                DataObject(
                    object_id=o.object_id,
                    timestamp=o.timestamp,
                    vector=o.vector,
                    keywords=frozenset(),
                )
                for o in objs
            ],
        )
        for ts, objs in ds.blocks
    ]
    return ds


def _acc_build(dataset, acc_name):
    params = ProtocolParams(mode="intra", bits=dataset.bits)
    net = VChainNetwork.create(
        acc_name=acc_name, params=params, seed=17, acc1_capacity=1 << 20
    )
    for timestamp, objects in dataset.blocks:
        net.miner.mine_block(objects, timestamp=timestamp)
    return net


@pytest.mark.parametrize("dims", DIMS)
@pytest.mark.parametrize("scheme", ("acc1", "acc2", "MHT"))
def test_fig16_dimensionality(benchmark, scheme, dims):
    dataset = _dataset(dims)
    if scheme == "MHT":
        baseline = MHTBaseline(dims)

        def build():
            return [
                baseline.build_block_ads(objects) for _ts, objects in dataset.blocks
            ]

        all_trees = benchmark.pedantic(build, rounds=1, iterations=1)
        ads = sum(MHTBaseline.ads_nbytes(trees) for trees in all_trees) / N_BLOCKS
        raw = sum(
            sum(o.nbytes() for o in objs) + 96 for _ts, objs in dataset.blocks
        ) / N_BLOCKS
    else:
        net = benchmark.pedantic(
            _acc_build, args=(dataset, scheme), rounds=1, iterations=1
        )
        backend = net.accumulator.backend
        ads = sum(block_ads_nbytes(b, backend) for b in net.chain) / N_BLOCKS
        raw = sum(raw_block_nbytes(b) for b in net.chain) / N_BLOCKS
    info = {
        "build_s_per_block": round(benchmark.stats.stats.mean / N_BLOCKS, 4),
        "normalized_block_size": round((raw + ads) / raw, 2),
        "ads_kb": round(ads / 1024, 2),
    }
    benchmark.extra_info.update(info)
    print_row(f"Fig16 {scheme} d={dims}", info)
