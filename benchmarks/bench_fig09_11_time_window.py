"""Figs 9–11 — time-window query performance.

For each dataset, sweeps the query window and reports SP CPU time,
user CPU time and VO size for the six schemes.  Expected shapes (paper
Section 9.2):

* indexes beat ``nil`` by ≥2× on 4SQ/ETH (low-similarity data prunes);
* index-scheme costs grow *sub-linearly* with the window;
* ``both`` ≥ ``intra`` on user CPU / VO size, biggest gain on ETH;
* acc2's batch verification keeps user CPU nearly flat.
"""

import pytest

from benchmarks.common import (
    SCHEMES,
    get_dataset,
    get_network,
    print_row,
    run_time_window_workload,
    workload,
)

CHAIN_BLOCKS = 40
WINDOWS = (8, 16, 24, 32)
DATASETS = ("4SQ", "WX", "ETH")


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("mode,acc_name", SCHEMES)
@pytest.mark.parametrize("dataset_name", DATASETS)
def test_time_window(benchmark, dataset_name, mode, acc_name, window):
    dataset = get_dataset(dataset_name, CHAIN_BLOCKS)
    net = get_network(dataset_name, CHAIN_BLOCKS, acc_name, mode)
    queries = workload(dataset, window)
    result = benchmark.pedantic(
        run_time_window_workload, args=(net, queries), rounds=1, iterations=1
    )
    info = result.as_info()
    benchmark.extra_info.update(info)
    print_row(f"Fig9-11 {dataset_name} {mode}-{acc_name} w={window}", info)
