#!/usr/bin/env python3
"""Load generator: concurrent clients against one serving endpoint.

Two endpoints over the same mined chain answer the same workloads:

* **serial** — ``max_workers=1``, caches disabled: the dispatcher the
  repo had before the worker-pool refactor.
* **concurrent** — the default pool with the VO-fragment and proof
  caches enabled.

N socket clients hammer each endpoint with an identical-window workload
(every client asks the same query — the multi-user hot path the caches
target) and a mixed workload (distinct query conditions plus
register/poll/deregister subscription traffic).  Latency is measured
per request at the transport layer (encode → TCP → serve → decode);
the report carries p50/p99 latency, throughput, cache hit counts, and
the concurrent-over-serial speedup, written to ``BENCH_load.json``.

CI usage: ``--check benchmarks/baseline_load.json`` fails the run when
identical-workload qps regresses more than ``--tolerance`` below the
checked-in baseline, or the speedup drops under ``--min-speedup``.

``--profile async-1k`` targets the :class:`AsyncSocketServer` instead:
it opens ``--async-clients`` (default 1000) simultaneous connections
from one asyncio swarm, proves they are all concurrently established
via the server's own counters, then measures per-request latency at
that concurrency.  Three forced sub-scenarios drive each hygiene knob
to its trigger point (rate limit, admission gate, slow-client
eviction) and a parity pass asserts byte-identical responses between
the threaded and async servers.  With ``--check``, the ``async_1k``
section of the baseline gates the client floor, the p99 bound, the
hygiene counters, and parity.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import socket
import struct
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import build_network, get_dataset, print_row

from repro.api import (
    AsyncSocketServer,
    ClientOptions,
    ServiceEndpoint,
    SocketServer,
    SocketTransport,
)
from repro.api.transport import decode_query_response
from repro.datasets import make_time_window_queries
from repro.testing import (
    SessionRecorder,
    load_recording,
    normalize_recording,
    replay_recording,
    save_recording,
)
from repro.wire import HeadersRequest, QueryRequest, encode_request, encode_response


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_workload(address, backend, n_clients: int, ops_per_client) -> dict:
    """Hammer the server from ``n_clients`` threads; aggregate latencies.

    ``ops_per_client(transport, client_index)`` yields one callable per
    request; each call is timed individually.
    """
    latencies: list[float] = []
    errors: list[Exception] = []
    merge_lock = threading.Lock()
    barrier = threading.Barrier(n_clients)

    def client_loop(index: int) -> None:
        mine: list[float] = []
        try:
            transport = SocketTransport(
                address,
                backend,
                options=ClientOptions(connect_timeout=120.0, request_deadline=120.0),
            )
        except Exception as exc:  # pragma: no cover - startup failure
            errors.append(exc)
            barrier.abort()  # release the clients already waiting
            return
        try:
            ops = list(ops_per_client(transport, index))
            barrier.wait(timeout=60)  # line up: all clients fire together
            for op in ops:
                started = time.perf_counter()
                op()
                mine.append(time.perf_counter() - started)
        except threading.BrokenBarrierError as exc:
            # a peer aborted (or the barrier timed out): record it so the
            # run fails loudly instead of publishing partial numbers
            errors.append(exc)
        except Exception as exc:
            errors.append(exc)
            barrier.abort()
        finally:
            transport.close()
        with merge_lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(n_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise SystemExit(f"load generator failed: {errors[0]!r}")
    if not latencies:
        raise SystemExit("load generator produced no samples")
    return {
        "requests": len(latencies),
        "total_s": round(wall, 4),
        "qps": round(len(latencies) / wall, 2),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
    }


def identical_ops(query, n_queries):
    """Every client repeats the same window query."""

    def ops(transport, _index):
        return [(lambda: transport.time_window_query(query)) for _ in range(n_queries)]

    return ops


def mixed_ops(queries, subscription, n_queries):
    """Distinct per-client conditions plus subscription traffic."""

    def ops(transport, index):
        query = queries[index % len(queries)]
        plan = [(lambda: transport.time_window_query(query)) for _ in range(n_queries)]
        state: dict = {}

        def register():
            state["qid"], _since = transport.register(subscription)

        def poll():
            transport.poll(state["qid"])

        def deregister():
            transport.deregister(state["qid"])

        return plan + [register, poll, poll, deregister]

    return ops


def serve(endpoint):
    return SocketServer(endpoint, idle_timeout=300.0).start()


# -- the async-1k profile ------------------------------------------------------
def frame(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


async def swarm(address, request_frame, n_clients, n_requests, server):
    """Open ``n_clients`` connections, then fire ``n_requests`` each.

    Connection setup is a separate phase: every socket is established
    (and the server's ``connections_opened`` counter has seen all of
    them with none closed) before the first request is written, so the
    measured request phase really runs at ``n_clients`` concurrency.
    """
    latencies: list[float] = []
    busy = 0

    async def connect(index):
        # spread the SYN burst a little so the listen backlog survives
        await asyncio.sleep((index % 100) * 0.002)
        return await asyncio.open_connection(*address)

    conns = await asyncio.gather(*(connect(index) for index in range(n_clients)))
    opened = server.counters.connections_opened
    closed = server.counters.connections_closed
    concurrent = opened - closed
    if concurrent < n_clients:
        raise SystemExit(
            f"only {concurrent} of {n_clients} connections concurrent at kickoff"
        )

    async def client_loop(reader, writer):
        nonlocal busy
        mine = []
        rejections = 0
        for _ in range(n_requests):
            started = time.perf_counter()
            writer.write(request_frame)
            await writer.drain()
            (length,) = struct.unpack(">I", await reader.readexactly(4))
            body = await reader.readexactly(length)
            if body and body[0] == 0:
                mine.append(time.perf_counter() - started)
            else:
                rejections += 1
        writer.close()
        latencies.extend(mine)
        busy += rejections

    started = time.perf_counter()
    await asyncio.gather(
        *(client_loop(reader, writer) for reader, writer in conns)
    )
    wall = time.perf_counter() - started
    return {
        "clients": n_clients,
        "concurrent_connections": concurrent,
        "requests": len(latencies),
        "busy_rejections": busy,
        "total_s": round(wall, 4),
        "qps": round(len(latencies) / wall, 2) if wall else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
    }


def force_rate_limit(endpoint_factory, headers_frame) -> dict:
    """A bursty client against a 1 rps bucket: most requests bounce."""
    endpoint = endpoint_factory()
    server = AsyncSocketServer(endpoint, rate_limit=1.0, rate_burst=2).start()
    try:
        with socket.create_connection(server.address, timeout=30) as sock:
            rejected = 0
            for _ in range(10):
                sock.sendall(headers_frame)
                (length,) = struct.unpack(">I", _recv(sock, 4))
                rejected += _recv(sock, length)[0] != 0
        return {"requests": 10, "rejected": rejected,
                "rate_limited": server.counters.rate_limited}
    finally:
        server.stop()
        endpoint.close()


def force_admission(endpoint_factory, query_frame) -> dict:
    """Two pipelining clients against ``max_inflight=1``: while the
    first client's query occupies the slot, the second's burst bounces."""
    endpoint = endpoint_factory()
    server = AsyncSocketServer(endpoint, max_inflight=1).start()
    rejected = 0
    lock = threading.Lock()

    def pipeline():
        nonlocal rejected
        mine = 0
        with socket.create_connection(server.address, timeout=60) as sock:
            for _ in range(8):
                sock.sendall(query_frame)
            for _ in range(8):
                (length,) = struct.unpack(">I", _recv(sock, 4))
                mine += _recv(sock, length)[0] != 0
        with lock:
            rejected += mine

    try:
        threads = [threading.Thread(target=pipeline) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        return {"requests": 16, "rejected": rejected,
                "admission_rejections": server.counters.admission_rejections}
    finally:
        server.stop()
        endpoint.close()


def force_eviction(endpoint_factory, query_frame) -> dict:
    """A client that never reads: the server's send queue fills and the
    connection is aborted instead of wedging the loop."""
    endpoint = endpoint_factory()
    server = AsyncSocketServer(
        endpoint, drain_timeout=0.3, send_queue_limit=4096, sock_sndbuf=4096
    ).start()
    try:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        sock.connect(server.address)
        try:
            for _ in range(40):
                sock.sendall(query_frame)
        except OSError:
            pass  # evicted mid-send: the write side is already gone
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and server.counters.evictions == 0:
            time.sleep(0.05)
        sock.close()
        return {"pipelined": 40, "evictions": server.counters.evictions}
    finally:
        server.stop()
        endpoint.close()


def _recv(sock: socket.socket, length: int) -> bytes:
    chunks = []
    while length:
        chunk = sock.recv(length)
        if not chunk:
            raise SystemExit("server closed the connection mid-frame")
        chunks.append(chunk)
        length -= len(chunk)
    return b"".join(chunks)


def check_parity(endpoint_factory, backend, queries) -> dict:
    """Byte-for-byte VO parity between the two server kinds on a
    deterministic mixed workload.

    Each raw response carries a trailing :class:`QueryStats` whose
    timings legitimately vary run to run, so the comparison is on the
    canonical encoding of the (results, VO) pair alone.
    """
    answers = {}
    for name, server_cls in [("threaded", SocketServer), ("async", AsyncSocketServer)]:
        endpoint = endpoint_factory()
        server = server_cls(endpoint).start()
        try:
            transport = SocketTransport(server.address, backend)
            bodies = [
                transport._request(encode_request(QueryRequest(query=query)))
                for query in queries
            ]
            answers[name] = [
                encode_response(backend, results, vo)
                for results, vo, _stats in (
                    decode_query_response(backend, body) for body in bodies
                )
            ]
            transport.close()
        finally:
            server.stop()
            endpoint.close()
    identical = answers["threaded"] == answers["async"]
    if not identical:
        raise SystemExit("threaded and async servers returned different VO bytes")
    return {
        "queries": len(queries),
        "vo_bytes": sum(len(body) for body in answers["async"]),
        "identical": identical,
    }


def record_phase(args, net, dataset, backend, identical_query) -> None:
    """--record: capture one deterministic client session as a .vrec.

    A single client syncs headers and runs the identical-window query a
    few times against a fresh concurrent endpoint; the recording is
    normalized (timings zeroed) at save time so the same dataset and
    flags always produce the same bytes, replayable with --replay.
    """
    recorder = SessionRecorder(
        label="bench-load",
        meta={
            "format": "bench-load-v1",
            "dataset": dataset.name,
            "blocks": str(args.blocks),
            "workers": str(args.workers),
        },
    )
    endpoint = ServiceEndpoint(net.sp, max_workers=args.workers)
    server = AsyncSocketServer(endpoint).start()
    try:
        transport = SocketTransport(server.address, backend, tap=recorder.tap())
        try:
            transport.headers()
            for _ in range(3):
                transport.time_window_query(identical_query)
        finally:
            transport.close()
    finally:
        server.stop()
        endpoint.close()
    save_recording(normalize_recording(backend, recorder.recording()), args.record)
    frames = len(recorder.recording().frames)
    print(f"recorded {frames} frame(s) to {args.record}")


def replay_phase(args, net, backend) -> int:
    """--replay: re-drive a recorded session, gate on byte parity."""
    recording = load_recording(args.replay)
    blocks = recording.meta.get("blocks")
    if blocks is not None and int(blocks) != args.blocks:
        print(f"FAIL: recording was captured with --blocks {blocks}, "
              f"this run mined {args.blocks}")
        return 1
    endpoint = ServiceEndpoint(net.sp, max_workers=args.workers)
    server = AsyncSocketServer(endpoint).start()
    try:
        report = replay_recording(recording, server.address, backend)
    finally:
        server.stop()
        endpoint.close()
    print(f"replayed {report.requests} request(s): "
          f"{len(report.mismatches)} mismatch(es), digest {report.digest[:16]}")
    if not report.ok:
        print(f"FAIL: {len(report.mismatches)} response(s) diverged from "
              f"the recording {args.replay}")
        return 1
    return 0


def run_async_profile(args, net, dataset, report) -> dict:
    backend = net.accumulator.backend
    headers_frame = frame(encode_request(HeadersRequest(from_height=0)))
    [wide] = make_time_window_queries(
        dataset, n_queries=1, window_blocks=args.blocks, seed=41
    )
    query_frame = frame(encode_request(QueryRequest(query=wide)))
    parity_queries = make_time_window_queries(
        dataset, n_queries=6, window_blocks=max(2, args.blocks // 2), seed=47
    )

    def endpoint_factory():
        return ServiceEndpoint(net.sp, max_workers=args.workers)

    endpoint = endpoint_factory()
    server = AsyncSocketServer(endpoint).start()
    try:
        sustained = asyncio.run(
            swarm(server.address, headers_frame, args.async_clients,
                  args.async_requests, server)
        )
        sustained["endpoint_stats"] = endpoint.stats()["server"]
    finally:
        server.stop()
        endpoint.close()
    print_row("async/sustain", {k: v for k, v in sustained.items()
                                if k != "endpoint_stats"})

    hygiene = {
        "rate_limit": force_rate_limit(endpoint_factory, headers_frame),
        "admission": force_admission(endpoint_factory, query_frame),
        "eviction": force_eviction(endpoint_factory, query_frame),
    }
    for name, result in hygiene.items():
        print_row(f"async/{name}", result)
    parity = check_parity(endpoint_factory, backend, parity_queries)
    print_row("async/parity", parity)

    report["async_1k"] = {
        "sustain": sustained,
        "hygiene": hygiene,
        "parity": parity,
    }
    return report["async_1k"]


def check_async_profile(section, baseline) -> int:
    floor = baseline.get("async_1k")
    if not floor:
        print("FAIL: baseline has no async_1k section")
        return 1
    sustained = section["sustain"]
    failures = []
    if sustained["concurrent_connections"] < floor["min_clients"]:
        failures.append(
            f"{sustained['concurrent_connections']} concurrent clients "
            f"under the {floor['min_clients']} floor"
        )
    if sustained["p99_ms"] > floor["max_p99_ms"]:
        failures.append(
            f"p99 {sustained['p99_ms']}ms over the {floor['max_p99_ms']}ms bound"
        )
    if sustained["busy_rejections"]:
        failures.append(
            f"{sustained['busy_rejections']} rejections in the sustain phase "
            "(no admission gate or rate limit is configured there)"
        )
    hygiene = section["hygiene"]
    if not hygiene["rate_limit"]["rate_limited"]:
        failures.append("rate limiter never fired")
    if not hygiene["admission"]["admission_rejections"]:
        failures.append("admission gate never fired")
    if not hygiene["eviction"]["evictions"]:
        failures.append("slow-client eviction never fired")
    if not section["parity"]["identical"]:
        failures.append("threaded/async byte parity broken")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(
        f"OK: {sustained['concurrent_connections']} concurrent clients, "
        f"p99 {sustained['p99_ms']}ms <= {floor['max_p99_ms']}ms, "
        "hygiene counters fired, byte parity holds"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=12,
                        help="window queries per client per workload")
    parser.add_argument("--blocks", type=int, default=10)
    parser.add_argument("--workers", type=int, default=8,
                        help="worker-pool size of the concurrent endpoint")
    parser.add_argument("--crypto-workers", type=int, default=1,
                        help="CryptoPool processes for the concurrent "
                        "endpoint (1 = serial crypto)")
    parser.add_argument("--profile", choices=["default", "async-1k"],
                        default="default",
                        help="'async-1k' swarms the AsyncSocketServer with "
                        "--async-clients concurrent connections and drives "
                        "every hygiene knob to its trigger point")
    parser.add_argument("--async-clients", type=int, default=1000)
    parser.add_argument("--async-requests", type=int, default=3,
                        help="requests per client in the async sustain phase")
    parser.add_argument("--out", default="BENCH_load.json")
    parser.add_argument("--check", default=None,
                        help="baseline JSON; exit 1 on qps regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional qps drop vs the baseline")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required concurrent/serial qps ratio (with --check)")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="also capture a deterministic single-client "
                        "session to this .vrec before the benchmark phases")
    parser.add_argument("--replay", default=None, metavar="PATH",
                        help="skip benchmarking: re-drive this .vrec against "
                        "a fresh endpoint and exit 1 on any byte mismatch")
    args = parser.parse_args()

    dataset = get_dataset("4SQ", args.blocks)
    net = build_network(dataset, "acc2", "both")
    backend = net.accumulator.backend
    [identical_query] = make_time_window_queries(
        dataset, n_queries=1, window_blocks=args.blocks, seed=41
    )
    mixed_queries = make_time_window_queries(
        dataset, n_queries=args.clients, window_blocks=max(2, args.blocks // 2),
        seed=43,
    )
    subscription = net.client.subscribe().any_of(dataset.vocabulary[0]).build()

    if args.replay:
        return replay_phase(args, net, backend)
    if args.record:
        record_phase(args, net, dataset, backend, identical_query)

    if args.profile == "async-1k":
        # amend an existing default-profile report in place when present,
        # so one BENCH_load.json carries both profiles
        out = Path(args.out)
        report = json.loads(out.read_text()) if out.exists() else {}
        report.setdefault("config", {})["async_1k"] = {
            "clients": args.async_clients,
            "requests_per_client": args.async_requests,
            "blocks": args.blocks,
            "workers": args.workers,
            "dataset": dataset.name,
        }
        section = run_async_profile(args, net, dataset, report)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
        if args.check:
            baseline = json.loads(Path(args.check).read_text())
            return check_async_profile(section, baseline)
        return 0

    report = {
        "config": {
            "clients": args.clients,
            "queries_per_client": args.queries,
            "blocks": args.blocks,
            "workers": args.workers,
            "dataset": dataset.name,
        }
    }

    serial_endpoint = ServiceEndpoint(
        net.sp, max_workers=1, cache_fragments=0, cache_proofs=0
    )
    with serve(serial_endpoint) as server:
        report["serial_identical"] = run_workload(
            server.address, backend, args.clients,
            identical_ops(identical_query, args.queries),
        )
    serial_endpoint.close()
    print_row("serial/identical", report["serial_identical"])

    concurrent_endpoint = ServiceEndpoint(
        net.sp, max_workers=args.workers, workers=args.crypto_workers
    )
    with serve(concurrent_endpoint) as server:
        report["concurrent_identical"] = run_workload(
            server.address, backend, args.clients,
            identical_ops(identical_query, args.queries),
        )
        # snapshot before the mixed workload so the published hit counts
        # are attributable to the identical-window traffic alone
        snapshot = concurrent_endpoint.stats()
        report["concurrent_identical"]["cache"] = snapshot["caches"]["fragments"]
        report["concurrent_identical"]["proof_cache"] = snapshot["caches"]["proofs"]
        report["concurrent_mixed"] = run_workload(
            server.address, backend, args.clients,
            mixed_ops(mixed_queries, subscription, args.queries),
        )
        # the full observability snapshot: endpoint counters, both
        # caches, subscription engine, and the CryptoPool (if any)
        report["endpoint_stats"] = concurrent_endpoint.stats()
    concurrent_endpoint.close()
    print_row("concurrent/identical", report["concurrent_identical"])
    print_row("concurrent/mixed", report["concurrent_mixed"])

    speedup = (
        report["concurrent_identical"]["qps"] / report["serial_identical"]["qps"]
    )
    report["speedup_identical"] = round(speedup, 2)
    print_row("summary", {
        "speedup_identical": report["speedup_identical"],
        "fragment_hits": snapshot["caches"]["fragments"]["hits"],
        "proof_hits": snapshot["caches"]["proofs"]["hits"],
        "queries_served": report["endpoint_stats"]["endpoint"]["queries"],
    })

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        floor = baseline["qps"] * (1.0 - args.tolerance)
        qps = report["concurrent_identical"]["qps"]
        if qps < floor:
            print(f"FAIL: qps {qps} under baseline floor {floor:.1f} "
                  f"(baseline {baseline['qps']}, tolerance {args.tolerance})")
            return 1
        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x under required "
                  f"{args.min_speedup:.1f}x")
            return 1
        print(f"OK: qps {qps} >= floor {floor:.1f}, "
              f"speedup {speedup:.2f}x >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
