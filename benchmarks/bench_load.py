#!/usr/bin/env python3
"""Load generator: concurrent clients against one serving endpoint.

Two endpoints over the same mined chain answer the same workloads:

* **serial** — ``max_workers=1``, caches disabled: the dispatcher the
  repo had before the worker-pool refactor.
* **concurrent** — the default pool with the VO-fragment and proof
  caches enabled.

N socket clients hammer each endpoint with an identical-window workload
(every client asks the same query — the multi-user hot path the caches
target) and a mixed workload (distinct query conditions plus
register/poll/deregister subscription traffic).  Latency is measured
per request at the transport layer (encode → TCP → serve → decode);
the report carries p50/p99 latency, throughput, cache hit counts, and
the concurrent-over-serial speedup, written to ``BENCH_load.json``.

CI usage: ``--check benchmarks/baseline_load.json`` fails the run when
identical-workload qps regresses more than ``--tolerance`` below the
checked-in baseline, or the speedup drops under ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import build_network, get_dataset, print_row

from repro.api import ServiceEndpoint, SocketServer, SocketTransport
from repro.datasets import make_time_window_queries


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_workload(address, backend, n_clients: int, ops_per_client) -> dict:
    """Hammer the server from ``n_clients`` threads; aggregate latencies.

    ``ops_per_client(transport, client_index)`` yields one callable per
    request; each call is timed individually.
    """
    latencies: list[float] = []
    errors: list[Exception] = []
    merge_lock = threading.Lock()
    barrier = threading.Barrier(n_clients)

    def client_loop(index: int) -> None:
        mine: list[float] = []
        try:
            transport = SocketTransport(address, backend, timeout=120.0)
        except Exception as exc:  # pragma: no cover - startup failure
            errors.append(exc)
            barrier.abort()  # release the clients already waiting
            return
        try:
            ops = list(ops_per_client(transport, index))
            barrier.wait(timeout=60)  # line up: all clients fire together
            for op in ops:
                started = time.perf_counter()
                op()
                mine.append(time.perf_counter() - started)
        except threading.BrokenBarrierError as exc:
            # a peer aborted (or the barrier timed out): record it so the
            # run fails loudly instead of publishing partial numbers
            errors.append(exc)
        except Exception as exc:
            errors.append(exc)
            barrier.abort()
        finally:
            transport.close()
        with merge_lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(n_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise SystemExit(f"load generator failed: {errors[0]!r}")
    if not latencies:
        raise SystemExit("load generator produced no samples")
    return {
        "requests": len(latencies),
        "total_s": round(wall, 4),
        "qps": round(len(latencies) / wall, 2),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
    }


def identical_ops(query, n_queries):
    """Every client repeats the same window query."""

    def ops(transport, _index):
        return [(lambda: transport.time_window_query(query)) for _ in range(n_queries)]

    return ops


def mixed_ops(queries, subscription, n_queries):
    """Distinct per-client conditions plus subscription traffic."""

    def ops(transport, index):
        query = queries[index % len(queries)]
        plan = [(lambda: transport.time_window_query(query)) for _ in range(n_queries)]
        state: dict = {}

        def register():
            state["qid"], _since = transport.register(subscription)

        def poll():
            transport.poll(state["qid"])

        def deregister():
            transport.deregister(state["qid"])

        return plan + [register, poll, poll, deregister]

    return ops


def serve(endpoint):
    return SocketServer(endpoint, idle_timeout=300.0).start()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=12,
                        help="window queries per client per workload")
    parser.add_argument("--blocks", type=int, default=10)
    parser.add_argument("--workers", type=int, default=8,
                        help="worker-pool size of the concurrent endpoint")
    parser.add_argument("--crypto-workers", type=int, default=1,
                        help="CryptoPool processes for the concurrent "
                        "endpoint (1 = serial crypto)")
    parser.add_argument("--out", default="BENCH_load.json")
    parser.add_argument("--check", default=None,
                        help="baseline JSON; exit 1 on qps regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional qps drop vs the baseline")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required concurrent/serial qps ratio (with --check)")
    args = parser.parse_args()

    dataset = get_dataset("4SQ", args.blocks)
    net = build_network(dataset, "acc2", "both")
    backend = net.accumulator.backend
    [identical_query] = make_time_window_queries(
        dataset, n_queries=1, window_blocks=args.blocks, seed=41
    )
    mixed_queries = make_time_window_queries(
        dataset, n_queries=args.clients, window_blocks=max(2, args.blocks // 2),
        seed=43,
    )
    subscription = net.client.subscribe().any_of(dataset.vocabulary[0]).build()

    report = {
        "config": {
            "clients": args.clients,
            "queries_per_client": args.queries,
            "blocks": args.blocks,
            "workers": args.workers,
            "dataset": dataset.name,
        }
    }

    serial_endpoint = ServiceEndpoint(
        net.sp, max_workers=1, cache_fragments=0, cache_proofs=0
    )
    with serve(serial_endpoint) as server:
        report["serial_identical"] = run_workload(
            server.address, backend, args.clients,
            identical_ops(identical_query, args.queries),
        )
    serial_endpoint.close()
    print_row("serial/identical", report["serial_identical"])

    concurrent_endpoint = ServiceEndpoint(
        net.sp, max_workers=args.workers, workers=args.crypto_workers
    )
    with serve(concurrent_endpoint) as server:
        report["concurrent_identical"] = run_workload(
            server.address, backend, args.clients,
            identical_ops(identical_query, args.queries),
        )
        # snapshot before the mixed workload so the published hit counts
        # are attributable to the identical-window traffic alone
        snapshot = concurrent_endpoint.stats()
        report["concurrent_identical"]["cache"] = snapshot["caches"]["fragments"]
        report["concurrent_identical"]["proof_cache"] = snapshot["caches"]["proofs"]
        report["concurrent_mixed"] = run_workload(
            server.address, backend, args.clients,
            mixed_ops(mixed_queries, subscription, args.queries),
        )
        # the full observability snapshot: endpoint counters, both
        # caches, subscription engine, and the CryptoPool (if any)
        report["endpoint_stats"] = concurrent_endpoint.stats()
    concurrent_endpoint.close()
    print_row("concurrent/identical", report["concurrent_identical"])
    print_row("concurrent/mixed", report["concurrent_mixed"])

    speedup = (
        report["concurrent_identical"]["qps"] / report["serial_identical"]["qps"]
    )
    report["speedup_identical"] = round(speedup, 2)
    print_row("summary", {
        "speedup_identical": report["speedup_identical"],
        "fragment_hits": snapshot["caches"]["fragments"]["hits"],
        "proof_hits": snapshot["caches"]["proofs"]["hits"],
        "queries_served": report["endpoint_stats"]["endpoint"]["queries"],
    })

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        floor = baseline["qps"] * (1.0 - args.tolerance)
        qps = report["concurrent_identical"]["qps"]
        if qps < floor:
            print(f"FAIL: qps {qps} under baseline floor {floor:.1f} "
                  f"(baseline {baseline['qps']}, tolerance {args.tolerance})")
            return 1
        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x under required "
                  f"{args.min_speedup:.1f}x")
            return 1
        print(f"OK: qps {qps} >= floor {floor:.1f}, "
              f"speedup {speedup:.2f}x >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
