#!/usr/bin/env python3
"""Crypto fast-path benchmark: MSM, accumulate/prove/verify, end to end.

Measures the group-arithmetic substrate (Jacobian coordinates, Pippenger
and fixed-base MSM, multi-pairing verification) against the **naive
reference path** the repo shipped before it: affine double-and-add
scalar multiplication, scalar-at-a-time multi-exponentiation, and one
full pairing (Miller loop + final exponentiation) per factor of every
verification equation.  The naive path is reimplemented here, from the
affine primitives that remain in :mod:`repro.crypto.curve` and
:mod:`repro.crypto.bn254`, so the comparison stays honest as the fast
path evolves.

Every timed section also asserts **bit-for-bit parity**: the fast path
must produce byte-identical group elements (and therefore identical
block digests and VOs) to the naive path.

CI usage: ``--check benchmarks/baseline_crypto.json`` fails the run when
any measured speedup drops below the checked-in floor or any parity
assertion fails.  Results land in ``BENCH_crypto.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import build_network, get_dataset, print_row

from repro.accumulators import ElementEncoder, make_accumulator
from repro.crypto import bn254 as bn
from repro.crypto import curve
from repro.crypto.accel import dispatch
from repro.crypto.backend import get_backend
from repro.crypto.curve import (
    FP2_ONE,
    fp2_conjugate,
    fp2_inv,
    fp2_mul,
    fp2_pow,
    fp2_square,
)
from repro.datasets import make_time_window_queries


# -- naive reference implementations (the pre-fast-path algorithms) ----------
def naive_ss_mul(point, scalar):
    """Affine double-and-add on the ss512 curve."""
    if scalar < 0:
        return curve.neg(naive_ss_mul(point, -scalar))
    result = None
    addend = point
    while scalar:
        if scalar & 1:
            result = curve.add(result, addend)
        addend = curve.add(addend, addend)
        scalar >>= 1
    return result


def naive_bn_mul(point, scalar):
    """Affine double-and-add on BN254 (either source group)."""
    if scalar < 0:
        return naive_bn_mul(bn.neg(point), -scalar)
    result = None
    addend = point
    while scalar:
        if scalar & 1:
            result = bn.add(result, addend)
        addend = bn.double(addend)
        scalar >>= 1
    return result


def naive_multi_exp(backend, bases, scalars):
    """Scalar-at-a-time Π bases[i]^scalars[i] over naive exponentiation."""
    acc = backend.identity()
    for base, scalar in zip(bases, scalars, strict=True):
        scalar %= backend.order
        if scalar == 0:
            continue
        if backend.name == "ss512":
            acc = backend.op(acc, naive_ss_mul(base, scalar))
        else:
            acc = backend.op(
                acc,
                (naive_bn_mul(base[0], scalar), naive_bn_mul(base[1], scalar)),
            )
    return acc


def _naive_line_eval(a, b, sx, sy_imag):
    """The original two-inversions-per-step ss512 line evaluation."""
    p = curve.FIELD_PRIME
    xa, ya = a
    xb, yb = b
    if xa == xb and (ya + yb) % p == 0:
        return ((sx - xa) % p, 0)
    if a == b:
        lam = (3 * xa * xa + 1) * pow(2 * ya, -1, p) % p
    else:
        lam = (yb - ya) * pow(xb - xa, -1, p) % p
    real = (-(ya + lam * (sx - xa))) % p
    return (real, sy_imag % p)


def naive_ss_pairing(p_point, q_point):
    """The original ss512 Tate pairing: separate line-eval and point-add
    inversions per Miller step, one final exponentiation per pairing."""
    if p_point is None or q_point is None:
        return FP2_ONE
    p = curve.FIELD_PRIME
    sx, sy = (-q_point[0]) % p, q_point[1]
    f = FP2_ONE
    t = p_point
    for bit in bin(curve.SUBGROUP_ORDER)[3:]:
        f = fp2_mul(fp2_square(f), _naive_line_eval(t, t, sx, sy))
        t = curve.add(t, t)
        if bit == "1":
            f = fp2_mul(f, _naive_line_eval(t, p_point, sx, sy))
            t = curve.add(t, p_point)
    eased = fp2_mul(fp2_conjugate(f), fp2_inv(f))
    return fp2_pow(eased, curve.COFACTOR)


def naive_pair(backend, a, b):
    if backend.name == "ss512":
        return naive_ss_pairing(a, b)
    return backend.pair(a, b)  # bn254 naive pairing == current per-pair path


# -- timing helpers -----------------------------------------------------------
def timed(fn, repeat: int = 1) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the (last) result."""
    best = None
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def section_msm(report: dict, parity: list) -> None:
    """Pippenger + fixed-base MSM vs the naive loop, 2^4 .. 2^10 points."""
    plans = {
        "ss512": {"sizes": [16, 32, 64, 128, 256, 512, 1024], "naive_max": 256},
        "bn254": {"sizes": [16, 32, 64], "naive_max": 32},
    }
    report["msm"] = {}
    for name, plan in plans.items():
        backend = get_backend(name)
        rng = random.Random(42)
        rows = []
        generator = backend.generator()
        bases = [
            backend.exp(generator, rng.randrange(1, backend.order))
            for _ in range(max(plan["sizes"]))
        ]
        all_tables = [backend.fixed_base_table(base) for base in bases]
        for size in plan["sizes"]:
            scalars = [rng.randrange(0, backend.order) for _ in range(size)]
            fast_s, fast = timed(
                lambda: backend.multi_exp(bases[:size], scalars), repeat=3
            )
            tables = all_tables[:size]
            fixed_s, fixed = timed(
                lambda: backend.multi_exp_tables(tables, scalars), repeat=3
            )
            row = {
                "size": size,
                "pippenger_s": round(fast_s, 6),
                "fixed_base_s": round(fixed_s, 6),
            }
            parity.append(("msm/fixed-base agree", backend.eq(fast, fixed)))
            if size <= plan["naive_max"]:
                naive_s, naive = timed(
                    lambda: naive_multi_exp(backend, bases[:size], scalars)
                )
                parity.append((f"{name} msm n={size}", backend.eq(fast, naive)))
                row["naive_s"] = round(naive_s, 6)
                row["speedup"] = round(naive_s / fast_s, 2)
            rows.append(row)
            print_row(f"msm/{name}", row)
        report["msm"][name] = rows


def section_accumulate(report: dict, parity: list) -> None:
    """acc1/acc2 accumulate (the mining hot path) vs naive commits."""
    report["accumulate"] = {}
    rng = random.Random(7)

    for name, capacity in (("ss512", 256), ("bn254", 64)):
        backend = get_backend(name)
        _sk, acc1 = make_accumulator(
            "acc1", backend, capacity=capacity, rng=random.Random(1)
        )
        multiset = Counter(
            {rng.randrange(1, backend.order): 1 for _ in range(capacity)}
        )
        poly = acc1._char_poly(multiset)
        powers = [acc1.public_key.power(i) for i in range(len(poly))]
        naive_s, naive = timed(lambda: naive_multi_exp(backend, powers, list(poly)))
        acc1.accumulate(multiset)  # warm the fixed-base tables
        fast_s, fast = timed(lambda: acc1.accumulate(multiset), repeat=3)
        parity.append((f"acc1 accumulate {name}", backend.eq(fast.parts[0], naive)))
        row = {
            "capacity": capacity,
            "naive_s": round(naive_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(naive_s / fast_s, 2),
        }
        report["accumulate"][f"acc1_{name}"] = row
        print_row(f"accumulate/acc1_{name}", row)

    backend = get_backend("ss512")
    _sk, acc2 = make_accumulator("acc2", backend, rng=random.Random(2))
    encoder = ElementEncoder(2**32 - 1)
    multiset = encoder.encode_multiset(
        Counter({f"attr{i}": 1 + i % 3 for i in range(64)})
    )
    fast_s, fast = timed(lambda: acc2.accumulate(multiset), repeat=3)
    q = acc2.public_key.domain
    naive_s, (part_a, part_b) = timed(
        lambda: (
            naive_multi_exp(
                backend,
                [acc2.public_key.power(i) for i in multiset],
                list(multiset.values()),
            ),
            naive_multi_exp(
                backend,
                [acc2.public_key.power(q - i) for i in multiset],
                list(multiset.values()),
            ),
        )
    )
    parity.append(
        (
            "acc2 accumulate ss512",
            backend.eq(fast.parts[0], part_a) and backend.eq(fast.parts[1], part_b),
        )
    )
    row = {
        "elements": 64,
        "naive_s": round(naive_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(naive_s / fast_s, 2),
    }
    report["accumulate"]["acc2_ss512"] = row
    print_row("accumulate/acc2_ss512", row)


def section_prove_verify(report: dict, parity: list) -> None:
    """Disjointness prove + verify, single and batched, ss512."""
    backend = get_backend("ss512")
    rng = random.Random(11)
    _sk, acc1 = make_accumulator("acc1", backend, capacity=256, rng=random.Random(3))
    _sk, acc2 = make_accumulator("acc2", backend, rng=random.Random(4))
    encoder = ElementEncoder(2**32 - 1)

    left_r = Counter({rng.randrange(1, backend.order): 1 for _ in range(24)})
    clause_r = Counter({rng.randrange(1, backend.order): 1 for _ in range(2)})
    prove1_s, proof1 = timed(lambda: acc1.prove_disjoint(left_r, clause_r))
    value1 = acc1.accumulate(left_r)
    clause1 = acc1.accumulate(clause_r)

    left_q = encoder.encode_multiset(Counter({f"a{i}": 1 for i in range(24)}))
    clause_q = encoder.encode_multiset(Counter({"Sedan": 1, "Benz": 1}))
    prove2_s, proof2 = timed(lambda: acc2.prove_disjoint(left_q, clause_q))
    value2 = acc2.accumulate(left_q)
    clause2 = acc2.accumulate(clause_q)
    report["prove"] = {
        "acc1_ss512_s": round(prove1_s, 4),
        "acc2_ss512_s": round(prove2_s, 4),
    }
    print_row("prove", report["prove"])

    # single verification: multi-pairing vs one full pairing per factor
    fast_s, ok = timed(lambda: acc1.verify_disjoint(value1, clause1, proof1), repeat=3)
    parity.append(("acc1 verify accepts", ok))
    pair_gg = naive_pair(backend, backend.generator(), backend.generator())
    naive_s, naive_ok = timed(
        lambda: backend.gt_eq(
            backend.gt_op(
                naive_pair(backend, value1.parts[0], proof1.parts[0]),
                naive_pair(backend, clause1.parts[0], proof1.parts[1]),
            ),
            pair_gg,
        )
    )
    parity.append(("acc1 naive verify accepts", naive_ok))
    report["verify"] = {
        "acc1_single_ss512": {
            "naive_s": round(naive_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(naive_s / fast_s, 2),
        }
    }
    print_row("verify/acc1_single", report["verify"]["acc1_single_ss512"])

    # batched verification: N weighted checks aggregated into one
    # pairing product (the QueryVerifier.batch_verify algebra)
    n_checks = 8
    checks = []
    for i in range(n_checks):
        member = encoder.encode_multiset(Counter({f"m{i}_{j}": 1 for j in range(6)}))
        checks.append((acc2.accumulate(member), acc2.prove_disjoint(member, clause_q)))
    weights = [rng.randrange(1, backend.order) for _ in range(n_checks)]

    def batch_fast():
        values = [
            type(value)(parts=tuple(backend.exp(p, w) for p in value.parts))
            for (value, _), w in zip(checks, weights)
        ]
        proofs = [
            type(proof)(parts=tuple(backend.exp(p, w) for p in proof.parts))
            for (_, proof), w in zip(checks, weights)
        ]
        return acc2.verify_disjoint(
            acc2.sum_values(values), clause2, acc2.sum_proofs(proofs)
        )

    def batch_naive():
        values = [
            type(value)(parts=tuple(naive_ss_mul(p, w) for p in value.parts))
            for (value, _), w in zip(checks, weights)
        ]
        proofs = [
            type(proof)(parts=tuple(naive_ss_mul(p, w) for p in proof.parts))
            for (_, proof), w in zip(checks, weights)
        ]
        summed = acc2.sum_values(values)
        summed_proof = acc2.sum_proofs(proofs)
        left = naive_pair(backend, summed.parts[0], clause2.parts[1])
        right = naive_pair(backend, summed_proof.parts[0], backend.generator())
        return backend.gt_eq(left, right)

    fast_s, fast_ok = timed(batch_fast, repeat=3)
    naive_s, naive_ok = timed(batch_naive)
    parity.append(("batch fast accepts", fast_ok))
    parity.append(("batch naive accepts", naive_ok))
    report["verify"]["batch_ss512"] = {
        "checks": n_checks,
        "naive_s": round(naive_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(naive_s / fast_s, 2),
    }
    print_row("verify/batch", report["verify"]["batch_ss512"])


def _accel_workload() -> dict:
    """acc1 accumulate / prove / verify at capacity 256 under the
    currently active provider, plus the canonical bytes of everything
    it produced (the in-run parity gate compares them across impls)."""
    backend = get_backend("ss512")
    _sk, acc1 = make_accumulator("acc1", backend, capacity=256, rng=random.Random(5))
    rng = random.Random(13)
    multiset = Counter({rng.randrange(1, backend.order): 1 for _ in range(256)})
    clause = Counter({rng.randrange(1, backend.order): 1 for _ in range(2)})
    acc1.accumulate(multiset)  # warm the fixed-base tables
    accumulate_s, value = timed(lambda: acc1.accumulate(multiset), repeat=5)
    prove_s, proof = timed(lambda: acc1.prove_disjoint(multiset, clause), repeat=5)
    clause_value = acc1.accumulate(clause)
    verify_s, ok = timed(
        lambda: acc1.verify_disjoint(value, clause_value, proof), repeat=5
    )
    encoded = b"".join(
        backend.encode(part)
        for part in (*value.parts, *clause_value.parts, *proof.parts)
    )
    return {
        "accumulate_s": accumulate_s,
        "prove_s": prove_s,
        "verify_s": verify_s,
        "accepts": ok,
        "bytes": encoded,
    }


def section_accel(report: dict, parity: list) -> None:
    """Best accelerated provider vs the pure-Python fast path (PR 4).

    The other sections compare the fast path against the *naive*
    reference; this one compares providers of the same algorithms, so
    the speedup isolates what gmpy2 / the C extension buy.  Skipped —
    with the reason recorded in the report — when only ``pure`` is
    available, which is what lets ``--check`` pass on a machine with
    neither accelerator installed.
    """
    impls = dispatch.available_impls()
    best = impls[0]
    if best == "pure":
        reason = "no accelerated provider available (install gmpy2 or build the C extension)"
        report["accel"] = {"impl": "pure", "skipped": reason}
        print(f"accel: SKIPPED — {reason}")
        return
    previous = dispatch.active_impl()
    try:
        dispatch.set_impl("pure")
        pure = _accel_workload()
        dispatch.set_impl(best)
        fast = _accel_workload()
    finally:
        dispatch.set_impl(previous)
    parity.append((f"accel {best} accepts", fast["accepts"] and pure["accepts"]))
    parity.append((f"accel {best} bytes == pure", fast["bytes"] == pure["bytes"]))
    report["accel"] = {"impl": best}
    for op in ("accumulate", "prove", "verify"):
        row = {
            "pure_s": round(pure[f"{op}_s"], 4),
            f"{best}_s": round(fast[f"{op}_s"], 4),
            "speedup": round(pure[f"{op}_s"] / fast[f"{op}_s"], 2),
        }
        report["accel"][op] = row
        print_row(f"accel/{op}", row)


def section_end_to_end(report: dict) -> None:
    """Mine + query + verify wall time on the benchmark substrate."""
    dataset = get_dataset("4SQ", 12)
    started = time.perf_counter()
    net = build_network(dataset, "acc2", "both")
    mine_s = time.perf_counter() - started
    queries = make_time_window_queries(dataset, n_queries=4, window_blocks=8, seed=29)
    sp_s = user_s = 0.0
    for query in queries:
        resp = net.client.execute(query, batch=True).raise_for_forgery()
        sp_s += resp.sp_seconds
        user_s += resp.user_seconds
    report["end_to_end"] = {
        "backend": "simulated",
        "blocks": 12,
        "mine_s": round(mine_s, 3),
        "query_s": round(sp_s / len(queries), 4),
        "verify_s": round(user_s / len(queries), 4),
    }
    print_row("end_to_end", report["end_to_end"])


def check(report: dict, baseline_path: str) -> list[str]:
    """Compare measured speedups against the committed floors.

    Floor keys address the report: ``accumulate/acc1_ss512`` walks
    nested dicts; ``msm/<backend>/<size>`` selects a sweep row.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    accel_skipped = report.get("accel", {}).get("skipped")
    for name, floor in baseline.get("floors", {}).items():
        parts = name.split("/")
        if parts[0] == "accel" and accel_skipped:
            print(f"check: skipping {name} — {accel_skipped}")
            continue
        if parts[0] == "msm":
            rows = report.get("msm", {}).get(parts[1], [])
            node = next((r for r in rows if r["size"] == int(parts[2])), {})
        else:
            node = report
            for part in parts:
                node = node.get(part, {}) if isinstance(node, dict) else {}
        speedup = node.get("speedup") if isinstance(node, dict) else None
        if speedup is None:
            failures.append(f"{name}: no measured speedup in report")
        elif speedup < floor:
            failures.append(f"{name}: speedup {speedup} below floor {floor}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_crypto.json")
    parser.add_argument(
        "--check",
        nargs="?",
        const="benchmarks/baseline_crypto.json",
        default=None,
        help="fail if speedups fall below the floors in this baseline json",
    )
    parser.add_argument(
        "--skip-end-to-end", action="store_true", help="crypto sections only"
    )
    args = parser.parse_args()

    report: dict = {
        "meta": {
            "python": sys.version.split()[0],
            "accel_impl": dispatch.active_impl(),
            "accel_available": list(dispatch.available_impls()),
            **dict(dispatch.active().meta),
        }
    }
    parity: list[tuple[str, bool]] = []
    section_msm(report, parity)
    section_accumulate(report, parity)
    section_prove_verify(report, parity)
    section_accel(report, parity)
    if not args.skip_end_to_end:
        section_end_to_end(report)

    bad_parity = [name for name, ok in parity if not ok]
    report["parity"] = {
        "checks": len(parity),
        "failed": bad_parity,
        "ok": not bad_parity,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if bad_parity:
        failures.extend(f"parity: {name}" for name in bad_parity)
    if args.check:
        failures.extend(check(report, args.check))
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
