"""Figs 17–19 (Appendix D.2) — impact of range selectivity.

Fixed maximum window, selectivity of the numeric range swept from 10%
to 50% (acc1 and acc2, both indexes enabled).  Expected shapes:

* SP CPU *decreases* as selectivity grows — more objects selected
  means fewer mismatch proofs, and proving dominates SP time;
* user CPU stays largely flat;
* VO size grows slightly (more result objects and hashes on the wire).
"""

import pytest

from benchmarks.common import (
    get_dataset,
    get_network,
    print_row,
    run_time_window_workload,
    workload,
)

CHAIN_BLOCKS = 40
WINDOW = 32
SELECTIVITIES = (0.10, 0.20, 0.30, 0.40, 0.50)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("acc_name", ("acc1", "acc2"))
@pytest.mark.parametrize("dataset_name", ("4SQ", "WX", "ETH"))
def test_selectivity(benchmark, dataset_name, acc_name, selectivity):
    dataset = get_dataset(dataset_name, CHAIN_BLOCKS)
    net = get_network(dataset_name, CHAIN_BLOCKS, acc_name, "both")
    queries = workload(dataset, WINDOW, selectivity=selectivity)
    result = benchmark.pedantic(
        run_time_window_workload, args=(net, queries), rounds=1, iterations=1
    )
    info = result.as_info()
    benchmark.extra_info.update(info)
    print_row(f"Fig17-19 {dataset_name} {acc_name} sel={int(selectivity * 100)}%", info)
