"""Shared benchmark infrastructure.

Every table/figure benchmark builds chains through :func:`get_network`
(memoised per configuration, since chain construction is setup, not the
measured quantity — except in Table 1 / Fig 16, which measure it
explicitly) and reports the paper's three metrics through
:func:`run_time_window_workload`.

Scale note: the paper's testbed processes 240–2400 blocks per query on
a 24-thread Xeon through the MCL C++ library; this harness uses
windows of 8–64 blocks on the simulated backend.  Relative shapes (who
wins, by what factor, where costs cross) are the reproduction target —
see EXPERIMENTS.md for the side-by-side reading.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro import VChainNetwork
from repro.chain import ProtocolParams
from repro.datasets import (
    Dataset,
    ethereum_like,
    foursquare_like,
    make_time_window_queries,
    weather_like,
)

#: benchmark-scale dataset shapes (blocks are built per-config on demand)
DATASET_BUILDERS = {
    "4SQ": lambda n: foursquare_like(n, objects_per_block=6),
    "WX": lambda n: weather_like(n, objects_per_block=10),
    "ETH": lambda n: ethereum_like(n, objects_per_block=6),
}

#: the six schemes of Table 1 / Figs 9–11
SCHEMES = [(mode, acc) for mode in ("nil", "intra", "both") for acc in ("acc1", "acc2")]

_NETWORKS: dict = {}
_DATASETS: dict = {}


def get_dataset(name: str, n_blocks: int) -> Dataset:
    key = (name, n_blocks)
    if key not in _DATASETS:
        _DATASETS[key] = DATASET_BUILDERS[name](n_blocks)
    return _DATASETS[key]


def build_network(
    dataset: Dataset,
    acc_name: str,
    mode: str,
    skip_size: int = 3,
    skip_base: int = 4,
    clustered: bool = True,
) -> VChainNetwork:
    """A fresh network with the dataset mined in (not memoised)."""
    params = ProtocolParams(
        mode=mode,
        bits=dataset.bits,
        skip_size=skip_size,
        skip_base=skip_base,
        difficulty_bits=0,
        clustered=clustered,
    )
    net = VChainNetwork.create(
        acc_name=acc_name, params=params, seed=17, acc1_capacity=1 << 20
    )
    net.mine_dataset(dataset)
    return net


def get_network(
    dataset_name: str,
    n_blocks: int,
    acc_name: str,
    mode: str,
    skip_size: int = 3,
    skip_base: int = 4,
    clustered: bool = True,
) -> VChainNetwork:
    """Memoised network builder (chain setup is amortised across benches)."""
    key = (dataset_name, n_blocks, acc_name, mode, skip_size, skip_base, clustered)
    if key not in _NETWORKS:
        _NETWORKS[key] = build_network(
            get_dataset(dataset_name, n_blocks),
            acc_name,
            mode,
            skip_size=skip_size,
            skip_base=skip_base,
            clustered=clustered,
        )
    return _NETWORKS[key]


@dataclass
class WorkloadResult:
    """Averages over a query workload — the paper's three metrics."""

    sp_seconds: float
    user_seconds: float
    vo_kb: float
    results: float

    def as_info(self) -> dict:
        return {
            "sp_cpu_s": round(self.sp_seconds, 4),
            "user_cpu_s": round(self.user_seconds, 4),
            "vo_kb": round(self.vo_kb, 2),
            "avg_results": round(self.results, 1),
        }


def run_time_window_workload(net: VChainNetwork, queries) -> WorkloadResult:
    """Run queries through the client API; average the three metrics."""
    client = net.client
    batch = net.accumulator.supports_aggregation
    sp_total = user_total = vo_total = res_total = 0.0
    for query in queries:
        resp = client.execute(query, batch=batch).raise_for_forgery()
        sp_total += resp.sp_seconds
        user_total += resp.user_seconds
        vo_total += resp.vo_nbytes / 1024
        res_total += len(resp.results)
    n = len(queries)
    return WorkloadResult(sp_total / n, user_total / n, vo_total / n, res_total / n)


def workload(dataset: Dataset, window_blocks: int, n_queries: int = 4, **kw):
    return make_time_window_queries(
        dataset, n_queries=n_queries, window_blocks=window_blocks, seed=29, **kw
    )


def timed(fn):
    """Run ``fn`` once, returning (elapsed_seconds, result)."""
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def print_row(label: str, info: dict) -> None:
    cells = "  ".join(f"{k}={v}" for k, v in info.items())
    print(f"[{label}] {cells}")


def fresh_rng(seed: int = 99) -> random.Random:
    return random.Random(seed)
