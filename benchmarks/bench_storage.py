#!/usr/bin/env python3
"""Durable storage benchmark: cold open vs warm serving.

Measures the three costs the :mod:`repro.storage` subsystem introduces
or removes:

* **write overhead** — mining into a file-backed chain (fsync-on-append)
  vs the same dataset into a memory chain;
* **reopen cost** — bringing a killed SP back from its ``data_dir``
  (log replay + decode + header re-validation), which replaces
  re-mining the whole chain from raw objects;
* **warm-query parity** — once reopened, time-window queries must match
  the in-memory chain byte-for-byte (answers *and* VO bytes) at
  comparable latency.

Writes ``BENCH_storage.json``; with ``--check`` exits 1 if parity is
violated or the reopened store serves queries more than ``--max-slowdown``
slower than memory.

Run:  PYTHONPATH=src python benchmarks/bench_storage.py
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro import VChainNetwork
from repro.datasets import ethereum_like, make_time_window_queries
from repro.wire import encode_time_window_vo


def mine_into(net: VChainNetwork, dataset) -> float:
    start = time.perf_counter()
    net.mine_dataset(dataset)
    return time.perf_counter() - start


def run_queries(
    net: VChainNetwork, queries
) -> tuple[list[tuple], list[bytes], list[float]]:
    """Execute + verify each query; returns answers, VO bytes, latencies.

    Each query runs twice and the *faster* run is kept — best-of-2
    damps GC pauses and noisy-neighbour spikes, which matters because
    CI gates on the reopened/memory latency ratio.
    """
    backend = net.accumulator.backend
    answers, vo_bytes, latencies = [], [], []
    for query in queries:
        start = time.perf_counter()
        resp = net.client.execute(query)
        first = time.perf_counter() - start
        start = time.perf_counter()
        net.client.execute(query)
        latencies.append(min(first, time.perf_counter() - start))
        resp.raise_for_forgery()
        answers.append(tuple(obj.object_id for obj in resp.results))
        vo_bytes.append(encode_time_window_vo(backend, resp.vo))
    return answers, vo_bytes, latencies


def dir_nbytes(path: Path) -> int:
    return sum(f.stat().st_size for f in path.glob("*") if f.is_file())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=24)
    parser.add_argument("--objects-per-block", type=int, default=6)
    parser.add_argument("--queries", type=int, default=16)
    parser.add_argument("--window-blocks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--no-fsync", action="store_true",
                        help="measure the log without per-append fsync")
    parser.add_argument("--data-dir", default=None,
                        help="working directory; its chain/ subdir is "
                             "cleared and rewritten (default: a fresh temp dir)")
    parser.add_argument("--out", default="BENCH_storage.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on parity violation or excessive slowdown")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="allowed reopened/memory p50-latency ratio "
                             "(with --check)")
    args = parser.parse_args()

    dataset = ethereum_like(
        args.blocks, objects_per_block=args.objects_per_block, seed=13
    )
    queries = make_time_window_queries(
        dataset, n_queries=args.queries, window_blocks=args.window_blocks, seed=29
    )

    if args.data_dir:
        workdir = Path(args.data_dir)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="bench_storage_"))
    chain_dir = workdir / "chain"
    # the chain/ subdir is exclusively this benchmark's output; clear it
    # so re-running with the same --data-dir measures a fresh cold write
    shutil.rmtree(chain_dir, ignore_errors=True)
    fsync = not args.no_fsync

    # -- cold write: memory vs file-backed ---------------------------------
    memory_net = VChainNetwork.create(seed=args.seed)
    memory_mine_s = mine_into(memory_net, dataset)

    durable_net = VChainNetwork.create(seed=args.seed, data_dir=chain_dir, fsync=fsync)
    durable_mine_s = mine_into(durable_net, dataset)
    durable_net.close()

    # -- reopen: the restart path ------------------------------------------
    reopen_start = time.perf_counter()
    reopened_net = VChainNetwork.open(chain_dir, fsync=fsync)
    reopen_s = time.perf_counter() - reopen_start
    assert len(reopened_net.chain) == args.blocks

    # -- warm-query parity --------------------------------------------------
    mem_answers, mem_vos, mem_lat = run_queries(memory_net, queries)
    reo_answers, reo_vos, reo_lat = run_queries(reopened_net, queries)
    answers_match = mem_answers == reo_answers
    vos_match = mem_vos == reo_vos

    mem_p50 = statistics.median(mem_lat)
    reo_p50 = statistics.median(reo_lat)
    slowdown = reo_p50 / mem_p50 if mem_p50 else 1.0

    report = {
        "config": {
            "blocks": args.blocks,
            "objects_per_block": args.objects_per_block,
            "queries": args.queries,
            "window_blocks": args.window_blocks,
            "fsync": fsync,
            "dataset": dataset.name,
        },
        "mine_memory_s": round(memory_mine_s, 4),
        "mine_durable_s": round(durable_mine_s, 4),
        "write_overhead": round(durable_mine_s / memory_mine_s, 3),
        "reopen_s": round(reopen_s, 4),
        "reopen_blocks_per_s": round(args.blocks / reopen_s, 1),
        "on_disk_nbytes": dir_nbytes(chain_dir),
        "query_p50_memory_s": round(mem_p50, 5),
        "query_p50_reopened_s": round(reo_p50, 5),
        "warm_slowdown": round(slowdown, 3),
        "answers_match": answers_match,
        "vo_bytes_match": vos_match,
    }
    reopened_net.close()
    if args.data_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)

    for key in ("mine_memory_s", "mine_durable_s", "write_overhead", "reopen_s",
                "reopen_blocks_per_s", "on_disk_nbytes", "query_p50_memory_s",
                "query_p50_reopened_s", "warm_slowdown", "answers_match",
                "vo_bytes_match"):
        print(f"{key:>22}: {report[key]}")

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        if not (answers_match and vos_match):
            print("FAIL: reopened answers are not byte-identical to memory serving")
            return 1
        if slowdown > args.max_slowdown:
            print(f"FAIL: reopened-store median latency {slowdown:.2f}x memory "
                  f"(allowed {args.max_slowdown:.2f}x)")
            return 1
        print(f"OK: byte-identical answers, warm slowdown {slowdown:.2f}x "
              f"<= {args.max_slowdown:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
