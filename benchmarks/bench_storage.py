#!/usr/bin/env python3
"""Durable storage benchmark: cold open vs warm serving.

Measures the three costs the :mod:`repro.storage` subsystem introduces
or removes:

* **write overhead** — mining into a file-backed chain (fsync-on-append)
  vs the same dataset into a memory chain;
* **reopen cost** — bringing a killed SP back from its ``data_dir``
  (log replay + decode + header re-validation), which replaces
  re-mining the whole chain from raw objects;
* **warm-query parity** — once reopened, time-window queries must match
  the in-memory chain byte-for-byte (answers *and* VO bytes) at
  comparable latency;
* **striping overhead** — the same dataset into a ``k+m`` erasure-coded
  :class:`~repro.storage.StripedBlockStore`: write and reopen cost vs
  the plain log, on-disk expansion, degraded reopen with ``m``
  directories deleted, and the scrub that rebuilds them — parity of
  answers and VO bytes is required in every state.

Writes ``BENCH_storage.json``; with ``--check`` exits 1 if parity is
violated anywhere, the reopened store serves queries more than
``--max-slowdown`` slower than memory, or the striped sweep breaks the
bounds in the ``striped`` section of ``--baseline``
(benchmarks/baseline_storage.json).

Run:  PYTHONPATH=src python benchmarks/bench_storage.py
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import tempfile
import time
import warnings
from pathlib import Path

from repro import VChainNetwork
from repro.datasets import ethereum_like, make_time_window_queries
from repro.storage import StorageWarning
from repro.wire import encode_time_window_vo


def mine_into(net: VChainNetwork, dataset) -> float:
    start = time.perf_counter()
    net.mine_dataset(dataset)
    return time.perf_counter() - start


def run_queries(
    net: VChainNetwork, queries
) -> tuple[list[tuple], list[bytes], list[float]]:
    """Execute + verify each query; returns answers, VO bytes, latencies.

    Each query runs twice and the *faster* run is kept — best-of-2
    damps GC pauses and noisy-neighbour spikes, which matters because
    CI gates on the reopened/memory latency ratio.
    """
    backend = net.accumulator.backend
    answers, vo_bytes, latencies = [], [], []
    for query in queries:
        start = time.perf_counter()
        resp = net.client.execute(query)
        first = time.perf_counter() - start
        start = time.perf_counter()
        net.client.execute(query)
        latencies.append(min(first, time.perf_counter() - start))
        resp.raise_for_forgery()
        answers.append(tuple(obj.object_id for obj in resp.results))
        vo_bytes.append(encode_time_window_vo(backend, resp.vo))
    return answers, vo_bytes, latencies


def dir_nbytes(path: Path) -> int:
    return sum(f.stat().st_size for f in path.glob("*") if f.is_file())


def deployment_nbytes(path: Path) -> int:
    """Total bytes of a plain chain dir or a striped parent of node-* dirs."""
    node_dirs = sorted(path.glob("node-*"))
    if node_dirs:
        return sum(dir_nbytes(d) for d in node_dirs)
    return dir_nbytes(path)


def striped_sweep(args, dataset, queries, workdir, fsync, memory_net,
                  plain_mine_s, plain_reopen_s):
    """Striped-vs-plain: write, reopen, degraded reopen, scrub rebuild."""
    mem_answers, mem_vos, _ = run_queries(memory_net, queries)
    parent = workdir / "striped"
    shutil.rmtree(parent, ignore_errors=True)

    net = VChainNetwork.create(
        seed=args.seed, data_dir=parent, fsync=fsync,
        stripes=args.stripes, parity=args.parity,
    )
    striped_mine_s = mine_into(net, dataset)
    net.close()
    on_disk = deployment_nbytes(parent)

    start = time.perf_counter()
    net = VChainNetwork.open(parent, fsync=fsync)
    reopen_s = time.perf_counter() - start
    answers, vos, _ = run_queries(net, queries)
    healthy_parity = answers == mem_answers and vos == mem_vos
    net.close()

    # lose m whole stripe directories, reopen from the survivors
    node_dirs = sorted(parent.glob("node-*"))
    for victim in node_dirs[: args.parity]:
        shutil.rmtree(victim)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StorageWarning)
        start = time.perf_counter()
        net = VChainNetwork.open(parent, fsync=fsync)
        degraded_reopen_s = time.perf_counter() - start
        answers, vos, _ = run_queries(net, queries)
        degraded_parity = answers == mem_answers and vos == mem_vos

        start = time.perf_counter()
        report = net.sp.chain.store.scrub()
        scrub_s = time.perf_counter() - start
    health = net.sp.chain.store.health()
    net.close()

    return {
        "k": args.stripes,
        "m": args.parity,
        "mine_s": round(striped_mine_s, 4),
        "write_overhead_vs_plain": round(striped_mine_s / plain_mine_s, 3),
        "on_disk_nbytes": on_disk,
        "reopen_s": round(reopen_s, 4),
        "reopen_ratio_vs_plain": round(reopen_s / plain_reopen_s, 3),
        "degraded_reopen_s": round(degraded_reopen_s, 4),
        "degraded_reopen_ratio_vs_plain": round(
            degraded_reopen_s / plain_reopen_s, 3
        ),
        "scrub_rebuild_s": round(scrub_s, 4),
        "rebuilt_nodes": report.rebuilt_nodes,
        "nodes_online_after_scrub": health["nodes_online"],
        "healthy_parity": healthy_parity,
        "degraded_parity": degraded_parity,
    }


def check_striped(section, disk_overhead, baseline) -> int:
    bounds = baseline.get("striped")
    if bounds is None:
        print("FAIL: baseline has no striped section")
        return 1
    failures = []
    if not section["healthy_parity"]:
        failures.append("striped answers are not byte-identical to memory")
    if not section["degraded_parity"]:
        failures.append(
            f"answers changed after losing {section['m']} stripe directories"
        )
    if section["nodes_online_after_scrub"] != section["k"] + section["m"]:
        failures.append(
            f"scrub left {section['nodes_online_after_scrub']} of "
            f"{section['k'] + section['m']} nodes online"
        )
    gates = [
        ("write_overhead_vs_plain", "max_write_overhead_vs_plain"),
        ("reopen_ratio_vs_plain", "max_reopen_ratio_vs_plain"),
        ("degraded_reopen_ratio_vs_plain", "max_degraded_reopen_ratio_vs_plain"),
    ]
    for metric, bound in gates:
        if section[metric] > bounds[bound]:
            failures.append(
                f"{metric} {section[metric]:.2f} over baseline "
                f"{bound} {bounds[bound]:.2f}"
            )
    if disk_overhead > bounds["max_disk_overhead"]:
        failures.append(
            f"on-disk expansion {disk_overhead:.2f}x over baseline "
            f"max_disk_overhead {bounds['max_disk_overhead']:.2f}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"OK: striped k={section['k']} m={section['m']} byte-identical "
            f"healthy and degraded, {disk_overhead:.2f}x disk, scrub rebuilt "
            f"{section['rebuilt_nodes']} node(s) in {section['scrub_rebuild_s']}s"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=24)
    parser.add_argument("--objects-per-block", type=int, default=6)
    parser.add_argument("--queries", type=int, default=16)
    parser.add_argument("--window-blocks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--no-fsync", action="store_true",
                        help="measure the log without per-append fsync")
    parser.add_argument("--data-dir", default=None,
                        help="working directory; its chain/ subdir is "
                             "cleared and rewritten (default: a fresh temp dir)")
    parser.add_argument("--out", default="BENCH_storage.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on parity violation, excessive slowdown, "
                             "or striped metrics over the baseline bounds")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="allowed reopened/memory p50-latency ratio "
                             "(with --check)")
    parser.add_argument("--stripes", type=int, default=4,
                        help="data stripes (k) for the striped sweep")
    parser.add_argument("--parity", type=int, default=2,
                        help="parity stripes (m) for the striped sweep")
    parser.add_argument("--skip-striped", action="store_true",
                        help="measure only the plain file store")
    parser.add_argument("--baseline",
                        default=str(Path(__file__).parent / "baseline_storage.json"),
                        help="baseline JSON bounding the striped sweep "
                             "(with --check)")
    args = parser.parse_args()

    dataset = ethereum_like(
        args.blocks, objects_per_block=args.objects_per_block, seed=13
    )
    queries = make_time_window_queries(
        dataset, n_queries=args.queries, window_blocks=args.window_blocks, seed=29
    )

    if args.data_dir:
        workdir = Path(args.data_dir)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="bench_storage_"))
    chain_dir = workdir / "chain"
    # the chain/ subdir is exclusively this benchmark's output; clear it
    # so re-running with the same --data-dir measures a fresh cold write
    shutil.rmtree(chain_dir, ignore_errors=True)
    fsync = not args.no_fsync

    # -- cold write: memory vs file-backed ---------------------------------
    memory_net = VChainNetwork.create(seed=args.seed)
    memory_mine_s = mine_into(memory_net, dataset)

    durable_net = VChainNetwork.create(seed=args.seed, data_dir=chain_dir, fsync=fsync)
    durable_mine_s = mine_into(durable_net, dataset)
    durable_net.close()

    # -- reopen: the restart path ------------------------------------------
    reopen_start = time.perf_counter()
    reopened_net = VChainNetwork.open(chain_dir, fsync=fsync)
    reopen_s = time.perf_counter() - reopen_start
    assert len(reopened_net.chain) == args.blocks

    # -- warm-query parity --------------------------------------------------
    mem_answers, mem_vos, mem_lat = run_queries(memory_net, queries)
    reo_answers, reo_vos, reo_lat = run_queries(reopened_net, queries)
    answers_match = mem_answers == reo_answers
    vos_match = mem_vos == reo_vos

    mem_p50 = statistics.median(mem_lat)
    reo_p50 = statistics.median(reo_lat)
    slowdown = reo_p50 / mem_p50 if mem_p50 else 1.0

    report = {
        "config": {
            "blocks": args.blocks,
            "objects_per_block": args.objects_per_block,
            "queries": args.queries,
            "window_blocks": args.window_blocks,
            "fsync": fsync,
            "dataset": dataset.name,
        },
        "mine_memory_s": round(memory_mine_s, 4),
        "mine_durable_s": round(durable_mine_s, 4),
        "write_overhead": round(durable_mine_s / memory_mine_s, 3),
        "reopen_s": round(reopen_s, 4),
        "reopen_blocks_per_s": round(args.blocks / reopen_s, 1),
        "on_disk_nbytes": dir_nbytes(chain_dir),
        "query_p50_memory_s": round(mem_p50, 5),
        "query_p50_reopened_s": round(reo_p50, 5),
        "warm_slowdown": round(slowdown, 3),
        "answers_match": answers_match,
        "vo_bytes_match": vos_match,
    }
    reopened_net.close()

    disk_overhead = 0.0
    if not args.skip_striped:
        report["striped"] = striped_sweep(
            args, dataset, queries, workdir, fsync, memory_net,
            plain_mine_s=durable_mine_s, plain_reopen_s=reopen_s,
        )
        disk_overhead = report["striped"]["on_disk_nbytes"] / report["on_disk_nbytes"]
        report["striped"]["disk_overhead_vs_plain"] = round(disk_overhead, 3)
    if args.data_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)

    for key in ("mine_memory_s", "mine_durable_s", "write_overhead", "reopen_s",
                "reopen_blocks_per_s", "on_disk_nbytes", "query_p50_memory_s",
                "query_p50_reopened_s", "warm_slowdown", "answers_match",
                "vo_bytes_match"):
        print(f"{key:>22}: {report[key]}")
    if "striped" in report:
        for key, value in report["striped"].items():
            print(f"{'striped.' + key:>38}: {value}")

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        if not (answers_match and vos_match):
            print("FAIL: reopened answers are not byte-identical to memory serving")
            return 1
        if slowdown > args.max_slowdown:
            print(f"FAIL: reopened-store median latency {slowdown:.2f}x memory "
                  f"(allowed {args.max_slowdown:.2f}x)")
            return 1
        print(f"OK: byte-identical answers, warm slowdown {slowdown:.2f}x "
              f"<= {args.max_slowdown:.2f}x")
        if "striped" in report:
            baseline = json.loads(Path(args.baseline).read_text())
            return check_striped(report["striped"], disk_overhead, baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
