"""Table 1 — miner's setup cost.

Reproduces the ADS construction time (per block) and ADS size (per
block) for the six schemes {nil, intra, both} × {acc1, acc2} on the
three datasets, plus the light-node header size.  Expected shapes:

* ``both`` construction slower than ``intra`` slower than ``nil``;
* acc2 dramatically cheaper than acc1 for ``both`` (Sum-aggregation
  reuses previous blocks' digests instead of re-accumulating);
* ADS size independent of the accumulator and growing with the index.
"""

import pytest

from benchmarks.common import SCHEMES, get_dataset, print_row
from repro.chain import ProtocolParams
from repro.chain.metrics import block_ads_nbytes
from repro import VChainNetwork

N_BLOCKS = 16
DATASETS = ("4SQ", "WX", "ETH")


def _mine_all(dataset, acc_name, mode):
    params = ProtocolParams(
        mode=mode, bits=dataset.bits, skip_size=3, skip_base=4, difficulty_bits=0
    )
    net = VChainNetwork.create(
        acc_name=acc_name, params=params, seed=17, acc1_capacity=1 << 20
    )
    for timestamp, objects in dataset.blocks:
        net.miner.mine_block(objects, timestamp=timestamp)
    return net


@pytest.mark.parametrize("mode,acc_name", SCHEMES)
@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table1_setup(benchmark, dataset_name, mode, acc_name):
    dataset = get_dataset(dataset_name, N_BLOCKS)
    net = benchmark.pedantic(
        _mine_all, args=(dataset, acc_name, mode), rounds=1, iterations=1
    )
    backend = net.accumulator.backend
    per_block_kb = sum(
        block_ads_nbytes(block, backend) for block in net.chain
    ) / len(net.chain) / 1024
    header_bits = sum(h.nbytes() for h in net.chain.headers()) / len(net.chain) * 8
    info = {
        "T_s_per_block": round(benchmark.stats.stats.mean / N_BLOCKS, 4),
        "S_kb_per_block": round(per_block_kb, 2),
        "header_bits": int(header_bits),
    }
    benchmark.extra_info.update(info)
    print_row(f"Table1 {dataset_name} {mode}-{acc_name}", info)
